//! Multi-process execution over TCP: each map/reduce pair in its own
//! OS process, wired to an in-supervisor coordinator.
//!
//! The paper's workers are separate JVM processes holding persistent
//! socket connections (§3.2); this module is the equivalent deployment
//! shape for the native backend. [`NativeRunner::run_remote`] plays the
//! master: it binds a localhost listener, spawns one worker process per
//! pair from a [`WorkerSpec`], and serves as the hub of a star topology
//! — every worker holds exactly one persistent connection to the
//! coordinator for its whole generation, and shuffle segments, credits,
//! barrier/broadcast/distance collectives, heartbeats, checkpoint
//! bodies and DFS reads all travel over that single framed connection
//! (see `imr_net::proto`).
//!
//! Key properties:
//!
//! * **Same loop, different env**: workers run the exact
//!   [`pair_loop`] the thread backend runs, through a [`PairEnv`] that
//!   speaks the wire protocol. TCP preserves per-connection FIFO order
//!   and the coordinator performs every order-sensitive step (segment
//!   routing per link, task-ordered distance sums, task-ordered
//!   broadcast assembly) exactly like the in-process fabric, so results
//!   are bit-identical across transports.
//! * **Credit-based backpressure**: a worker may only send a segment
//!   while it holds a credit for the destination link; the consumer
//!   returns the credit through the coordinator when it pops the
//!   segment. Credits start at [`HANDOFF_BUFFER`], giving the same
//!   bounded hand-off as the bounded channels.
//! * **Reconnect-with-replay recovery**: a generation that dies (a
//!   scripted kill, a watchdog-detected hang, a vanished process, a
//!   migration) is torn down — poison frames, a teardown grace, then
//!   SIGKILL — and the shared supervisor respawns fresh processes that
//!   reconnect and replay from the last checkpoint epoch. The
//!   coordinator's record of checkpoint progress is authoritative:
//!   checkpoint frames are delivered in-order before the worker's EOF,
//!   so a worker that dies right after checkpointing never loses it.
//! * **The DFS stays in the supervisor**: the in-memory DFS cannot be
//!   shared across processes, so workers load partitions via `ReadPart`
//!   RPCs and ship checkpoint bodies for the coordinator to persist.

use crate::fault::FaultBarrier;
use crate::monitor::{monitor_loop, BalancePlan, Intervention, ProgressBoard};
use crate::pair::{
    delta_loop, pair_loop, EnvFail, PairCfg, PairDirs, PairEnv, PairOutcome, PairPlan,
};
use crate::supervisor::{assert_partitioning, supervise, GenInput, PairRun, RunOutcome};
use crate::{NativeRunner, HANDOFF_BUFFER};
use bytes::Bytes;
use imapreduce::{
    prepare_incremental, FaultEvent, FixpointStore, GraphDelta, Incremental, IncrementalOutcome,
    IterConfig, IterOutcome, IterativeJob, Mapping, TransportKind,
};
use imr_dfs::{hist_path, snapshot_dir};
use imr_mapreduce::io::{num_parts, part_path};
use imr_mapreduce::EngineError;
use imr_net::chaos::{ChaosDirection, ChaosState, ChaosStream, DIR_INBOUND, DIR_OUTBOUND};
use imr_net::frame::{FrameReader, FrameWriter, HEADER_LEN};
use imr_net::proto::{OutcomeKind, ToCoord, ToWorker, WireOutcome, WorkerSetup};
use imr_net::{Closed, FrameAction, NetError, NetPolicy, Transport, WorkerConn};
use imr_records::Codec;
use imr_simcluster::{Metrics, MetricsHandle, MetricsSnapshot, NodeId, TaskClock};
use imr_telemetry::{Gauge, HistSnapshot, Phase, Telemetry, NUM_PHASES};
use imr_trace::{TraceEvent, TraceKind, COORD};
use parking_lot::Mutex;
use std::io::{BufWriter, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::process::{Child, Command, ExitStatus, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Coordinator main-loop poll interval. Connect/handshake/teardown
/// deadlines live in [`NetPolicy`] (`cfg.net`).
const TICK: Duration = Duration::from_millis(2);

/// How to launch worker processes for [`NativeRunner::run_remote`].
#[derive(Debug, Clone)]
pub struct WorkerSpec {
    /// Path to the worker binary (typically `imr-worker`, or the test
    /// binary itself re-exec'd in worker mode). The binary must call
    /// [`serve_worker`] with a job equal to the coordinator's.
    pub bin: PathBuf,
    /// Extra argv passed to every worker after the transport arguments
    /// (`<addr> <pair> <generation> <job-id>`); the worker uses them to
    /// pick and parameterize the job.
    pub job_args: Vec<String>,
    /// Job identity tag (0 outside the job service): carried in the
    /// worker argv, the hello and the setup frame, so a multi-job
    /// coordinator rejects a stray worker from another job's fleet and
    /// trace streams can be demultiplexed per job.
    pub job: u64,
    /// Test hook: make `(pair, iteration)` exit abruptly — no outcome
    /// frame, connection simply drops — right after that iteration of
    /// the first generation it is armed in, simulating an unscripted
    /// worker crash. Consumed when armed, so the respawned generation
    /// replays cleanly.
    pub crash: Option<(usize, usize)>,
}

impl WorkerSpec {
    /// A spec launching `bin` with the given job arguments.
    pub fn new(bin: impl Into<PathBuf>, job_args: Vec<String>) -> Self {
        WorkerSpec {
            bin: bin.into(),
            job_args,
            job: 0,
            crash: None,
        }
    }

    /// Tags every worker of this spec with a job identity (see
    /// [`WorkerSpec::job`]).
    pub fn with_job(mut self, job: u64) -> Self {
        self.job = job;
        self
    }

    /// Arms the crash test hook (see [`WorkerSpec::crash`]).
    pub fn with_crash(mut self, pair: usize, after_iteration: usize) -> Self {
        self.crash = Some((pair, after_iteration));
        self
    }
}

impl NativeRunner {
    /// Runs `job` to termination with every map/reduce pair in its own
    /// OS process, connected to this supervisor over localhost TCP.
    /// Requires `cfg.transport == TransportKind::Tcp`
    /// (`IterConfig::with_tcp_transport`). `job` must describe the same
    /// computation the worker binary resolves from `spec.job_args` —
    /// the coordinator uses it only to decode the final output.
    ///
    /// Fault semantics, recovery, migration and determinism match
    /// [`NativeRunner::run_faults`] exactly; additionally a worker
    /// process that dies *without* a scripted cause (crash, kill -9,
    /// dropped connection) is detected as a recoverable fault and the
    /// job replays from the last checkpoint.
    #[allow(clippy::too_many_arguments)]
    pub fn run_remote<J: IterativeJob>(
        &self,
        job: &J,
        spec: &WorkerSpec,
        cfg: &IterConfig,
        state_dir: &str,
        static_dir: &str,
        output_dir: &str,
        faults: &[FaultEvent],
    ) -> Result<IterOutcome<J::K, J::S>, EngineError> {
        self.run_remote_inner(
            job, spec, cfg, state_dir, static_dir, output_dir, faults, None,
        )
    }

    /// Re-converges `job` from a preserved fixpoint after `delta`
    /// mutates the graph, with every pair in its own OS process (the
    /// TCP flavor of [`IterEngine::run_incremental`]; `cfg.incremental`
    /// and `cfg.accumulative` must both be set, plus
    /// `cfg.with_tcp_transport()`).
    ///
    /// The incremental plan is computed in the supervisor
    /// ([`prepare_incremental`]); workers cannot be trusted to have
    /// loaded the right warm start blindly, so the coordinator
    /// announces each warm state part's size and FNV-64 digest in a
    /// [`ToWorker::Patch`] frame right after setup, and every worker
    /// echoes what it actually decoded as [`ToCoord::PatchStats`]. A
    /// mismatch on either side fails the run instead of silently
    /// converging from the wrong fixpoint. Kills, hangs and chaos
    /// recover exactly as in [`NativeRunner::run_remote`]: replays from
    /// a checkpoint skip the patch exchange (the snapshot is already
    /// post-patch), replays from epoch 0 repeat it.
    #[allow(clippy::too_many_arguments)]
    pub fn run_remote_incremental<J>(
        &self,
        job: &J,
        spec: &WorkerSpec,
        cfg: &IterConfig,
        fix: &FixpointStore,
        prev_static_dir: &str,
        delta: &GraphDelta,
        state_dir: &str,
        static_dir: &str,
        output_dir: &str,
        faults: &[FaultEvent],
    ) -> Result<IncrementalOutcome<J::S>, EngineError>
    where
        J: Incremental,
    {
        if !cfg.incremental {
            return Err(EngineError::Config(
                "run_remote_incremental requires IterConfig::with_incremental_mode".into(),
            ));
        }
        cfg.validate(faults)?;
        let mut clock = TaskClock::default();
        let stats = prepare_incremental(
            job,
            &self.dfs,
            fix,
            prev_static_dir,
            delta,
            cfg.num_tasks,
            state_dir,
            static_dir,
            &mut clock,
        )?;
        let mut patches = Vec::with_capacity(cfg.num_tasks);
        for q in 0..cfg.num_tasks {
            let raw = self
                .dfs
                .read(&part_path(state_dir, q), NodeId(0), &mut clock)?;
            patches.push((raw.len() as u64, patch_digest(&raw)));
        }
        let outcome = self.run_remote_inner(
            job,
            spec,
            cfg,
            state_dir,
            static_dir,
            output_dir,
            faults,
            Some(patches),
        )?;
        Ok(IncrementalOutcome { outcome, stats })
    }

    #[allow(clippy::too_many_arguments)]
    fn run_remote_inner<J: IterativeJob>(
        &self,
        _job: &J,
        spec: &WorkerSpec,
        cfg: &IterConfig,
        state_dir: &str,
        static_dir: &str,
        output_dir: &str,
        faults: &[FaultEvent],
        patches: Option<Vec<(u64, u64)>>,
    ) -> Result<IterOutcome<J::K, J::S>, EngineError> {
        cfg.validate(faults)?;
        if cfg.transport != TransportKind::Tcp {
            return Err(EngineError::Config(
                "run_remote needs cfg.with_tcp_transport(); for the in-process \
                 channel fabric use run_faults"
                    .into(),
            ));
        }
        assert_partitioning(&self.dfs, cfg, state_dir, static_dir);
        let num_state_parts = num_parts(&self.dfs, state_dir);
        let dirs = PairDirs {
            state_dir: state_dir.to_owned(),
            static_dir: static_dir.to_owned(),
            output_dir: output_dir.to_owned(),
        };

        let listener = TcpListener::bind("127.0.0.1:0")
            .and_then(|l| l.set_nonblocking(true).map(|()| l))
            .map_err(|e| EngineError::Worker(format!("coordinator bind failed: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| EngineError::Worker(format!("coordinator bind failed: {e}")))?
            .to_string();

        // One fault budget for the whole run: chaos injections across
        // every generation draw from it, so a seeded schedule always
        // goes quiet and lets the job finish within its retry budget.
        let chaos_state = cfg
            .chaos
            .filter(|c| c.is_active())
            .map(|c| ChaosState::new(c.budget));

        // Optional live exposition endpoint: with telemetry attached
        // and `IMR_TELEMETRY_ADDR` set, serve this run's registry over
        // HTTP for the duration of the run. A failed bind only costs
        // the endpoint — telemetry is never fatal.
        let _tel_server = match (std::env::var("IMR_TELEMETRY_ADDR"), &self.telemetry) {
            (Ok(addr), Some(tel)) if !addr.is_empty() => {
                let tel = Arc::clone(tel);
                let job_id = spec.job;
                let provider: imr_telemetry::Provider =
                    Arc::new(move || imr_telemetry::Exposition {
                        jobs: vec![imr_telemetry::JobStats::from_telemetry(job_id, &tel)],
                    });
                imr_telemetry::TelemetryServer::start(&addr, provider).ok()
            }
            _ => None,
        };

        let mut generation_no: u64 = 0;
        let mut crash_pending = spec.crash;
        let mut run_gen =
            |gen: GenInput<'_>| -> Result<(Vec<PairRun>, Option<Intervention>), EngineError> {
                generation_no += 1;
                // Arm the crash hook once; the respawn replays cleanly.
                let mut plans: Vec<PairPlan> = gen.plans.to_vec();
                if let Some((pair, after)) = crash_pending.take() {
                    plans[pair].crash_after = Some(after);
                }
                run_generation(
                    self,
                    cfg,
                    spec,
                    &dirs,
                    num_state_parts,
                    &listener,
                    &addr,
                    generation_no,
                    &plans,
                    chaos_state.as_ref(),
                    patches.as_deref(),
                    gen,
                )
            };

        supervise::<J>(
            &self.dfs,
            &self.metrics,
            cfg,
            output_dir,
            faults,
            format!("{} [tcp]", self.label(cfg)),
            true,
            self.trace.as_ref(),
            self.ctl.as_ref(),
            &mut run_gen,
        )
    }
}

/// FNV-1a 64-bit digest of a warm-start state part's encoded bytes.
/// Both halves of the patch handshake compute it — the coordinator over
/// the part it planned, the worker over the part it decoded — so any
/// divergence (truncated read, stale part, routing error) surfaces as a
/// digest mismatch before the run converges from the wrong bytes.
fn patch_digest(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Shared coordinator state for one generation.
struct CoordState {
    /// Barrier arrivals in the current round.
    arrivals: usize,
    /// Pending one2all contributions, one slot per pair.
    bcast: Vec<Option<Bytes>>,
    /// Pending distance contributions, one slot per pair.
    dists: Vec<Option<(f64, bool)>>,
    /// First terminal outcome recorded per pair (never overwritten).
    outcomes: Vec<Option<RunOutcome>>,
    /// The pair's connection reached EOF — nothing more will arrive.
    settled: Vec<bool>,
    /// Per-iteration distance samples rebuilt from heartbeats.
    local_dist: Vec<Vec<(f64, bool)>>,
    /// Per-iteration completion offsets rebuilt from heartbeats.
    iter_done: Vec<Vec<Duration>>,
    /// Authoritative checkpoint progress (frames arrive before EOF).
    last_ckpt: Vec<usize>,
    poisoned: bool,
}

/// The coordinator's write half of one worker link: the hardened frame
/// writer, the raw socket (for chaos-injected resets) and this
/// direction's chaos schedule.
struct CoordLink {
    writer: FrameWriter<BufWriter<TcpStream>>,
    sock: TcpStream,
    chaos: Option<ChaosDirection>,
}

impl CoordLink {
    /// Writes one frame, letting the chaos schedule (if any, and unless
    /// the frame is teardown control traffic) damage it first.
    fn send(&mut self, payload: &[u8], control: bool) -> Result<(), NetError> {
        let action = match (&mut self.chaos, control) {
            (Some(dir), false) => dir.frame_action(HEADER_LEN + payload.len()),
            _ => FrameAction::Deliver,
        };
        match action {
            FrameAction::Deliver => {
                self.writer.write(payload)?;
                self.writer.get_mut().flush()?;
            }
            FrameAction::Drop => {
                // Written nowhere; the receiver sees the sequence gap on
                // the next delivered frame and fails Corrupt.
                self.writer.skip();
            }
            FrameAction::Corrupt { bit } => {
                let mut encoded = self.writer.encode_next(payload)?;
                encoded[bit / 8] ^= 1 << (bit % 8);
                self.writer.get_mut().write_all(&encoded)?;
                self.writer.get_mut().flush()?;
            }
            FrameAction::Duplicate => {
                let encoded = self.writer.encode_next(payload)?;
                self.writer.get_mut().write_all(&encoded)?;
                self.writer.get_mut().write_all(&encoded)?;
                self.writer.get_mut().flush()?;
            }
            FrameAction::Reset { cut } => {
                let encoded = self.writer.encode_next(payload)?;
                let cut = cut.min(encoded.len().saturating_sub(1));
                self.writer.get_mut().write_all(&encoded[..cut])?;
                self.writer.get_mut().flush()?;
                // Mid-frame hard reset; also tears down our read half,
                // which surfaces as the reader's EOF.
                let _ = self.sock.shutdown(Shutdown::Both);
            }
        }
        Ok(())
    }
}

struct Coordinator<'a> {
    n: usize,
    state: Mutex<CoordState>,
    writers: Vec<Mutex<CoordLink>>,
    board: ProgressBoard,
    /// One-participant poison latch shared with the monitor thread: it
    /// plays the role the generation barrier plays in-process.
    latch: FaultBarrier,
    runner: &'a NativeRunner,
    output_dir: &'a str,
    started: Instant,
    /// Current pair→node placement, used to retag worker trace events
    /// with the node hosting the pair.
    assignment: &'a [NodeId],
    /// Nanoseconds between the job's `started` instant and this
    /// generation's worker clocks (captured once all workers connected):
    /// worker-relative trace timestamps are rebased by this offset onto
    /// the coordinator's timeline.
    trace_offset: u64,
    /// Per-pair committed distance history from earlier generations,
    /// prepended to a worker's shipped history when persisting the
    /// checkpoint sidecar (workers only know their generation-local
    /// entries).
    seed_dist: &'a [Vec<(f64, bool)>],
    /// Expected `(bytes, digest)` of each pair's warm-start state part
    /// in an incremental run: announced to workers at epoch 0 and
    /// checked against their [`ToCoord::PatchStats`] echo. `None`
    /// outside incremental runs, where any echo is a protocol error.
    patches: Option<&'a [(u64, u64)]>,
}

impl Coordinator<'_> {
    /// Best-effort framed send; a dead peer surfaces as its reader's
    /// EOF, so write errors are ignored here. Subject to chaos when the
    /// link carries a schedule.
    fn send_to(&self, q: usize, msg: &ToWorker) {
        let _ = self.writers[q].lock().send(&msg.to_bytes(), false);
    }

    /// Like [`Coordinator::send_to`] but never chaos-damaged: poison
    /// and drain frames are the teardown path itself, so injecting
    /// faults into them would stall the recovery they trigger.
    fn send_ctl(&self, q: usize, msg: &ToWorker) {
        let _ = self.writers[q].lock().send(&msg.to_bytes(), true);
    }

    /// Poisons the generation (idempotent): latch for the monitor,
    /// state flag for the main loop's teardown clock, poison frames so
    /// every worker aborts at its next blocking operation. Lock order
    /// is always state → writer.
    fn poison_locked(&self, state: &mut CoordState) {
        if !state.poisoned {
            state.poisoned = true;
            self.latch.poison();
            for q in 0..self.n {
                self.send_ctl(q, &ToWorker::Poison);
            }
        }
    }

    /// Like [`Coordinator::poison_locked`] but with [`ToWorker::Drain`]
    /// frames: workers unwind the same way, then exit successfully
    /// instead of reporting an abort. Used for service-requested
    /// shutdown, where the teardown is policy, not failure.
    fn drain_locked(&self, state: &mut CoordState) {
        if !state.poisoned {
            state.poisoned = true;
            self.latch.poison();
            for q in 0..self.n {
                self.send_ctl(q, &ToWorker::Drain);
            }
        }
    }
}

fn wire_to_outcome(wire: WireOutcome) -> RunOutcome {
    match wire.kind {
        OutcomeKind::Finished => RunOutcome::Finished {
            final_data: wire.payload,
            iterations: wire.at_iteration,
        },
        OutcomeKind::Induced => RunOutcome::Induced {
            at_iteration: wire.at_iteration,
        },
        OutcomeKind::Stalled => RunOutcome::Stalled {
            at_iteration: wire.at_iteration,
        },
        OutcomeKind::Aborted => RunOutcome::Aborted,
        OutcomeKind::Error => RunOutcome::Error(EngineError::Worker(wire.message)),
    }
}

/// One generation: spawn processes, run the hub, reap, hand the
/// per-pair runs to the shared supervisor.
#[allow(clippy::too_many_arguments)]
fn run_generation(
    runner: &NativeRunner,
    cfg: &IterConfig,
    spec: &WorkerSpec,
    dirs: &PairDirs,
    num_state_parts: usize,
    listener: &TcpListener,
    addr: &str,
    generation: u64,
    plans: &[PairPlan],
    chaos_state: Option<&Arc<ChaosState>>,
    patches: Option<&[(u64, u64)]>,
    gen: GenInput<'_>,
) -> Result<(Vec<PairRun>, Option<Intervention>), EngineError> {
    let n = plans.len();
    let epoch = gen.epoch;
    let policy = &cfg.net;
    runner.metrics.tasks_launched.add(2 * n as u64);

    // ---- Spawn + connect -------------------------------------------
    let mut children: Vec<ChildGuard> = (0..n)
        .map(|q| ChildGuard::spawn(spec, addr, q, generation, policy))
        .collect::<Result<_, _>>()?;
    let accepted = accept_workers(
        listener,
        n,
        generation,
        spec.job,
        &mut children,
        policy,
        runner,
        gen.started,
    )?;
    // Worker clocks start right after their handshakes, i.e. "now".
    let trace_offset = gen.started.elapsed().as_nanos() as u64;
    if generation > 1 {
        runner.metrics.reconnect_attempts.add(1);
        if let Some(trace) = runner.trace.as_ref() {
            trace.record(
                TraceEvent::new(TraceKind::Reconnect { generation })
                    .at(trace_offset)
                    .tagged(COORD, COORD, epoch as u32, gen.generation),
            );
        }
    }

    // Split each accepted connection into its chaos-aware halves: a
    // CoordLink for writing (outbound schedule) and a FrameReader over
    // a ChaosStream for reading (inbound schedule), both keyed by
    // (generation, pair, direction) so schedules are deterministic.
    let chaos = cfg.chaos.filter(|c| c.is_active());
    let mut writers: Vec<Mutex<CoordLink>> = Vec::with_capacity(n);
    let mut readers: Vec<FrameReader<ChaosStream<TcpStream>>> = Vec::with_capacity(n);
    for (q, reader) in accepted.into_iter().enumerate() {
        let clone = |s: &TcpStream| {
            s.try_clone()
                .map_err(|e| EngineError::Worker(format!("socket clone failed: {e}")))
        };
        let sock = clone(reader.get_ref())?;
        let writer = FrameWriter::new(BufWriter::new(clone(&sock)?))
            .map_err(|e| EngineError::Worker(format!("handshake write failed: {e}")))?;
        let out_dir = chaos
            .as_ref()
            .zip(chaos_state)
            .map(|(c, state)| c.direction(state, generation, q as u64, DIR_OUTBOUND));
        writers.push(Mutex::new(CoordLink {
            writer,
            sock,
            chaos: out_dir,
        }));
        let in_dir = chaos
            .as_ref()
            .zip(chaos_state)
            .map(|(c, state)| c.direction(state, generation, q as u64, DIR_INBOUND));
        let (stream, seq) = reader.into_parts();
        let wrapped = match in_dir {
            Some(dir) => ChaosStream::chaotic(stream, dir),
            None => ChaosStream::clean(stream),
        };
        readers.push(FrameReader::from_parts(wrapped, seq));
    }

    let co = Coordinator {
        n,
        state: Mutex::new(CoordState {
            arrivals: 0,
            bcast: vec![None; n],
            dists: vec![None; n],
            outcomes: (0..n).map(|_| None).collect(),
            settled: vec![false; n],
            local_dist: vec![Vec::new(); n],
            iter_done: vec![Vec::new(); n],
            last_ckpt: vec![epoch; n],
            poisoned: false,
        }),
        writers,
        board: ProgressBoard::new(n, epoch),
        latch: FaultBarrier::new(1),
        runner,
        output_dir: &dirs.output_dir,
        started: gen.started,
        assignment: gen.assignment,
        trace_offset,
        seed_dist: gen.seed_dist,
        patches,
    };

    // First frame on every connection: the job/generation parameters.
    for (q, plan) in plans.iter().enumerate() {
        co.send_to(
            q,
            &ToWorker::Setup(Box::new(WorkerSetup {
                job: spec.job,
                num_tasks: n,
                epoch,
                one2all: cfg.mapping == Mapping::One2All,
                sync: cfg.effective_sync(),
                distance_threshold: cfg.termination.distance_threshold,
                max_iterations: cfg.termination.max_iterations,
                checkpoint_interval: cfg.checkpoint_interval,
                num_state_parts,
                state_dir: dirs.state_dir.clone(),
                static_dir: dirs.static_dir.clone(),
                output_dir: dirs.output_dir.clone(),
                kills: plan.kills.clone(),
                hangs: plan.hangs.clone(),
                delays: plan.delays.clone(),
                speed: plan.speed,
                crash_after: plan.crash_after,
                accumulative: cfg.accumulative,
                delta_batch: cfg.delta_batch,
                check_every: cfg.check_every,
                incremental: cfg.incremental,
            })),
        );
    }

    // Warm-start integrity: at epoch 0 of an incremental run each pair
    // loads a freshly planned `(value, pending)` part, so the
    // coordinator announces the part's size and digest right after the
    // setup frame. Replays from a checkpoint (epoch > 0) restore the
    // snapshot instead and never consume a patch frame.
    if epoch == 0 {
        if let Some(patches) = patches {
            for (q, &(bytes, digest)) in patches.iter().enumerate().take(n) {
                co.send_to(q, &ToWorker::Patch { bytes, digest });
            }
        }
    }

    let monitor_enabled = cfg.watchdog.is_some() || cfg.load_balance.is_some();
    let workers_done = AtomicBool::new(false);

    // ---- Hub: readers + monitor + teardown clock -------------------
    let intervention = thread::scope(|scope| {
        for (q, reader) in readers.into_iter().enumerate() {
            let co = &co;
            scope.spawn(move || reader_loop(co, q, reader));
        }
        let monitor_handle = if monitor_enabled {
            let co = &co;
            let workers_done = &workers_done;
            let watchdog = cfg.watchdog;
            let lb = cfg.load_balance;
            let cluster = runner.dfs.cluster();
            let assignment = gen.assignment;
            let migrations_done = gen.migrations_done;
            Some(scope.spawn(move || {
                let balance = lb.map(|lb| BalancePlan {
                    cluster,
                    assignment,
                    deviation: lb.deviation,
                    remaining: (lb.max_migrations as u64).saturating_sub(migrations_done) as usize,
                });
                monitor_loop(
                    &co.board,
                    &co.latch,
                    workers_done,
                    watchdog,
                    balance,
                    &runner.metrics,
                )
            }))
        } else {
            None
        };

        let mut poisoned_at: Option<Instant> = None;
        let mut killed = false;
        loop {
            {
                let mut st = co.state.lock();
                if st.settled.iter().all(|&s| s) {
                    break;
                }
                // A service-level abort drains the fleet: workers
                // unwind and exit cleanly, the supervisor surfaces the
                // aborted run as a ctl error.
                if runner.ctl.as_ref().is_some_and(|c| c.is_aborted()) {
                    co.drain_locked(&mut st);
                }
                // Monitor interventions poison only the latch; the main
                // loop propagates them onto the wire.
                if co.latch.is_poisoned() && !st.poisoned {
                    co.poison_locked(&mut st);
                }
                if st.poisoned && poisoned_at.is_none() {
                    poisoned_at = Some(Instant::now());
                }
            }
            if let Some(at) = poisoned_at {
                if !killed && at.elapsed() > policy.teardown_grace {
                    // Workers that ignored the poison frame (wedged in
                    // job code, killed transport) get the hard way.
                    killed = true;
                    for child in children.iter_mut() {
                        child.kill_now();
                    }
                }
            }
            thread::sleep(TICK);
        }
        workers_done.store(true, Ordering::Release);
        monitor_handle.and_then(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
    });

    for child in children.iter_mut() {
        child.reap(policy.teardown_grace);
    }

    // Fold this generation's injected faults into the run's metrics
    // (drain: the shared state survives across generations).
    if let Some(state) = chaos_state {
        runner
            .metrics
            .chaos_injections
            .add(state.drain_injections());
    }

    let state = co.state.into_inner();
    let runs: Vec<PairRun> = state
        .outcomes
        .into_iter()
        .zip(state.local_dist)
        .zip(state.iter_done)
        .zip(state.last_ckpt)
        .map(|(((outcome, local_dist), iter_done), last_ckpt)| PairRun {
            local_dist,
            iter_done,
            last_ckpt,
            outcome: outcome.expect("settled worker has an outcome"),
        })
        .collect();
    Ok((runs, intervention))
}

/// Per-connection coordinator reader: demultiplexes one worker's
/// frames until EOF. EOF with no recorded outcome means the process
/// vanished — synthesized as a recoverable abort. A failed integrity
/// check ([`NetError::Corrupt`]) is counted and traced, then tears the
/// connection down the same way — never decoded.
fn reader_loop(co: &Coordinator<'_>, q: usize, mut reader: FrameReader<ChaosStream<TcpStream>>) {
    loop {
        let msg = match reader.read() {
            Ok(mut frame) => match ToCoord::decode(&mut frame) {
                Ok(msg) => msg,
                Err(_) => break,
            },
            Err(NetError::Corrupt { seq }) => {
                co.runner.metrics.corrupt_frames.add(1);
                if let Some(trace) = co.runner.trace.as_ref() {
                    trace.record(
                        TraceEvent::new(TraceKind::Corrupt { seq })
                            .at(co.started.elapsed().as_nanos() as u64)
                            .tagged(COORD, q as u32, 0, 0),
                    );
                }
                break;
            }
            Err(_) => break,
        };
        match msg {
            ToCoord::Segment { dest, payload } => {
                // Routed without the state lock: per-link order is the
                // per-connection FIFO order, and flow control is the
                // sender's credit, not a queue here.
                if dest < co.n {
                    co.runner
                        .metrics
                        .shuffle_local_bytes
                        .add(payload.len() as u64);
                    co.send_to(dest, &ToWorker::Segment { src: q, payload });
                }
            }
            ToCoord::Delta { dest, payload } => {
                // Same lock-free routing as shuffle segments: per-link
                // order is the connection FIFO, flow control is the
                // sender's credit.
                if dest < co.n {
                    co.runner
                        .metrics
                        .shuffle_local_bytes
                        .add(payload.len() as u64);
                    co.send_to(dest, &ToWorker::Delta { src: q, payload });
                }
            }
            ToCoord::DeltaStats {
                deltas,
                preemptions,
                checks,
            } => {
                // Accumulative-mode counters are tallied worker-side and
                // folded into the job's real registry here (the worker's
                // local registry is a sink).
                co.runner.metrics.deltas_sent.add(deltas);
                co.runner.metrics.priority_preemptions.add(preemptions);
                co.runner.metrics.termination_checks.add(checks);
            }
            ToCoord::PatchStats {
                keys,
                bytes,
                digest,
            } => {
                // The worker's proof that it restored the announced
                // warm-start part. A mismatched echo (or an echo outside
                // an incremental run) means the worker warm-started from
                // the wrong bytes — fatal, like a failed checkpoint
                // write: the fixpoint it would converge from is not the
                // one the planner produced.
                let expected = co.patches.and_then(|p| p.get(q)).copied();
                match expected {
                    Some((eb, ed)) if eb == bytes && ed == digest => {}
                    _ => {
                        let mut st = co.state.lock();
                        if st.outcomes[q].is_none() {
                            let want = expected.map_or_else(
                                || "no patch was announced".to_owned(),
                                |(eb, ed)| format!("announced {eb} bytes, digest {ed:#018x}"),
                            );
                            st.outcomes[q] = Some(RunOutcome::Error(EngineError::Worker(format!(
                                "pair {q}: warm-start patch mismatch: worker loaded {keys} \
                                 keys, {bytes} bytes, digest {digest:#018x}; {want}"
                            ))));
                        }
                        co.poison_locked(&mut st);
                    }
                }
            }
            ToCoord::Credit { src } => {
                if src < co.n {
                    co.send_to(src, &ToWorker::Credit { dest: q });
                }
            }
            ToCoord::BarrierArrive => {
                let mut st = co.state.lock();
                st.arrivals += 1;
                if st.arrivals == co.n {
                    st.arrivals = 0;
                    for p in 0..co.n {
                        co.send_to(p, &ToWorker::BarrierRelease);
                    }
                }
            }
            ToCoord::Broadcast { payload } => {
                let mut st = co.state.lock();
                co.runner
                    .metrics
                    .broadcast_bytes
                    .add(payload.len() as u64 * (co.n as u64 - 1));
                st.bcast[q] = Some(payload);
                if st.bcast.iter().all(Option::is_some) {
                    // Task order: slot p holds pair p's part.
                    let parts: Vec<Bytes> = st
                        .bcast
                        .iter_mut()
                        .map(|slot| slot.take().expect("all broadcast parts present"))
                        .collect();
                    for p in 0..co.n {
                        co.send_to(
                            p,
                            &ToWorker::BroadcastAll {
                                parts: parts.clone(),
                            },
                        );
                    }
                }
            }
            ToCoord::Distance { d, has_prev } => {
                let mut st = co.state.lock();
                st.dists[q] = Some((d, has_prev));
                if st.dists.iter().all(Option::is_some) {
                    // The same task-ordered float sum every thread
                    // computes in-process: q = 0..n, so the result is
                    // bit-identical.
                    let mut total = 0.0f64;
                    let mut any_prev = false;
                    for slot in st.dists.iter_mut() {
                        let (ds, hs) = slot.take().expect("all distances present");
                        if hs {
                            any_prev = true;
                            total += ds;
                        }
                    }
                    for p in 0..co.n {
                        co.send_to(p, &ToWorker::DistanceTotal { total, any_prev });
                    }
                }
            }
            ToCoord::Beat {
                iteration,
                busy_secs,
                d,
                has_prev,
            } => {
                co.board.beat(q, iteration, busy_secs);
                let mut st = co.state.lock();
                st.local_dist[q].push((d, has_prev));
                st.iter_done[q].push(co.started.elapsed());
            }
            ToCoord::Ckpt {
                iteration,
                payload,
                hist,
            } => {
                co.runner.metrics.checkpoint_bytes.add(payload.len() as u64);
                let dir = snapshot_dir(co.output_dir, iteration);
                // The worker ships only its generation-local history;
                // prepend the committed prefix so the sidecar covers
                // iterations 1..=iteration, like the thread backend's.
                let full: Vec<(f64, bool)> = co.seed_dist[q].iter().copied().chain(hist).collect();
                let mut ck = TaskClock::default();
                let res = co
                    .runner
                    .dfs
                    .put_atomic(&part_path(&dir, q), payload, NodeId(0), &mut ck)
                    .and_then(|()| {
                        co.runner.dfs.put_atomic(
                            &hist_path(&dir, q),
                            full.to_bytes(),
                            NodeId(0),
                            &mut ck,
                        )
                    });
                let mut st = co.state.lock();
                match res {
                    Ok(()) => {
                        st.last_ckpt[q] = iteration;
                        co.board.mark_ckpt(q, iteration);
                    }
                    Err(e) => {
                        // A storage failure is fatal, exactly as it is
                        // for an in-process checkpoint write.
                        if st.outcomes[q].is_none() {
                            st.outcomes[q] = Some(RunOutcome::Error(e.into()));
                        }
                        co.poison_locked(&mut st);
                    }
                }
            }
            ToCoord::ReadPart { dir, part } => {
                let mut clock = TaskClock::default();
                match co
                    .runner
                    .dfs
                    .read(&part_path(&dir, part), NodeId(0), &mut clock)
                {
                    Ok(payload) => co.send_to(q, &ToWorker::PartData { payload }),
                    Err(e) => co.send_to(
                        q,
                        &ToWorker::PartErr {
                            message: e.to_string(),
                        },
                    ),
                }
            }
            ToCoord::Outcome(wire) => {
                let outcome = wire_to_outcome(wire);
                let finished = matches!(outcome, RunOutcome::Finished { .. });
                co.board.mark_exited(q);
                let mut st = co.state.lock();
                if st.outcomes[q].is_none() {
                    st.outcomes[q] = Some(outcome);
                }
                if !finished {
                    co.poison_locked(&mut st);
                }
            }
            ToCoord::Trace { payload } => {
                // Merge the worker's batch into the job trace: rebase
                // worker-relative timestamps onto the coordinator's
                // timeline and retag the node from the pair's current
                // placement (the worker does not know where it runs).
                // Dropped silently when tracing is off or the batch is
                // malformed — trace loss is never fatal.
                if let Some(trace) = co.runner.trace.as_ref() {
                    if let Ok(events) = imr_trace::decode_events(&payload) {
                        for mut ev in events {
                            ev.node = co.assignment[q].index() as u32;
                            ev.start_nanos = ev.start_nanos.saturating_add(co.trace_offset);
                            ev.end_nanos = ev.end_nanos.saturating_add(co.trace_offset);
                            trace.record(ev);
                        }
                    }
                }
            }
            ToCoord::Telemetry { payload } => {
                // Merge the worker's sampled series + histogram deltas
                // into the job registry: rebase worker-relative stamps
                // onto the coordinator's timeline and overwrite the
                // counter columns from the authoritative registry (the
                // worker's local registry is a sink). Dropped silently
                // when telemetry is off or the batch is malformed —
                // telemetry loss is never fatal.
                if let Some(tel) = co.runner.telemetry.as_ref() {
                    if let Ok((samples, hists)) = imr_telemetry::decode_batch(&payload) {
                        let counters = co.runner.metrics.snapshot().values();
                        for mut s in samples {
                            s.stamp_nanos = s.stamp_nanos.saturating_add(co.trace_offset);
                            s.counters = counters;
                            tel.push_sample(s);
                        }
                        tel.merge_hists(&hists);
                    }
                }
            }
            ToCoord::Hello { .. } => {} // consumed during accept
        }
    }
    co.board.mark_exited(q);
    let mut st = co.state.lock();
    st.settled[q] = true;
    if st.outcomes[q].is_none() {
        // The connection dropped with no outcome frame: the process
        // vanished. Recoverable — the supervisor replays from the last
        // checkpoint (with a no-progress backstop).
        st.outcomes[q] = Some(RunOutcome::Aborted);
        co.poison_locked(&mut st);
    }
}

/// Accepts and validates `n` worker connections for `generation`.
/// Non-matching hellos (stale generation, bad pair, wrong wire
/// version, garbage) are counted (`hellos_rejected`), traced
/// (`RejectedHello`) and dropped, and accepting continues; a worker
/// that exits before connecting fails the generation fast. Each
/// returned reader has consumed the preamble and the hello frame, so
/// its sequence counter carries into the generation's reader loop.
#[allow(clippy::too_many_arguments)]
fn accept_workers(
    listener: &TcpListener,
    n: usize,
    generation: u64,
    job: u64,
    children: &mut [ChildGuard],
    policy: &NetPolicy,
    runner: &NativeRunner,
    started: Instant,
) -> Result<Vec<FrameReader<TcpStream>>, EngineError> {
    let deadline = Instant::now() + policy.connect_timeout;
    let mut conns: Vec<Option<FrameReader<TcpStream>>> = (0..n).map(|_| None).collect();
    let mut connected = 0;
    while connected < n {
        match listener.accept() {
            Ok((stream, _)) => {
                // The listener is non-blocking; the accepted socket must
                // not be (platform-dependent inheritance).
                let prepared = stream
                    .set_nonblocking(false)
                    .and_then(|()| stream.set_nodelay(true))
                    .and_then(|()| stream.set_read_timeout(Some(policy.handshake_timeout)));
                let mut reader = FrameReader::new(stream);
                let hello = prepared
                    .map_err(NetError::from)
                    .and_then(|()| reader.expect_preamble())
                    .and_then(|()| reader.read())
                    .and_then(|mut b| Ok(ToCoord::decode(&mut b)?));
                match hello {
                    Ok(ToCoord::Hello {
                        pair,
                        generation: g,
                        job: j,
                    }) if g == generation && j == job && pair < n && conns[pair].is_none() => {
                        let _ = reader.get_mut().set_read_timeout(None);
                        conns[pair] = Some(reader);
                        connected += 1;
                    }
                    _ => {
                        runner.metrics.hellos_rejected.add(1);
                        if let Some(trace) = runner.trace.as_ref() {
                            trace.record(
                                TraceEvent::new(TraceKind::RejectedHello)
                                    .at(started.elapsed().as_nanos() as u64)
                                    .tagged(COORD, COORD, 0, generation as u32),
                            );
                        }
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                for (q, child) in children.iter_mut().enumerate() {
                    if conns[q].is_none() {
                        if let Some(status) = child.try_status() {
                            return Err(EngineError::Worker(format!(
                                "worker {q} exited during startup: {status}"
                            )));
                        }
                    }
                }
                if Instant::now() > deadline {
                    return Err(EngineError::Worker(
                        "timed out waiting for worker processes to connect".into(),
                    ));
                }
                thread::sleep(TICK);
            }
            Err(e) => return Err(EngineError::Worker(format!("accept failed: {e}"))),
        }
    }
    Ok(conns.into_iter().map(Option::unwrap).collect())
}

/// A spawned worker process, killed on drop so no generation leaks
/// children past the supervisor.
struct ChildGuard {
    child: Option<Child>,
}

impl ChildGuard {
    fn spawn(
        spec: &WorkerSpec,
        addr: &str,
        pair: usize,
        generation: u64,
        policy: &NetPolicy,
    ) -> Result<Self, EngineError> {
        // Exporting the policy onto the child (overriding anything
        // inherited) keeps the whole fleet on the coordinator's
        // deadlines; the worker reads it back with NetPolicy::from_env.
        let child = Command::new(&spec.bin)
            .arg(addr)
            .arg(pair.to_string())
            .arg(generation.to_string())
            .arg(spec.job.to_string())
            .args(&spec.job_args)
            .envs(policy.env_vars())
            .stdin(Stdio::null())
            .spawn()
            .map_err(|e| {
                EngineError::Worker(format!(
                    "failed to spawn worker {pair} ({}): {e}",
                    spec.bin.display()
                ))
            })?;
        Ok(ChildGuard { child: Some(child) })
    }

    fn try_status(&mut self) -> Option<ExitStatus> {
        self.child
            .as_mut()
            .and_then(|c| c.try_wait().ok().flatten())
    }

    fn kill_now(&mut self) {
        if let Some(child) = self.child.as_mut() {
            let _ = child.kill();
        }
    }

    /// Waits up to `grace` for a clean exit, then kills.
    fn reap(&mut self, grace: Duration) {
        if let Some(mut child) = self.child.take() {
            let deadline = Instant::now() + grace;
            loop {
                match child.try_wait() {
                    Ok(Some(_)) => return,
                    Ok(None) if Instant::now() < deadline => thread::sleep(TICK),
                    _ => {
                        let _ = child.kill();
                        let _ = child.wait();
                        return;
                    }
                }
            }
        }
    }
}

impl Drop for ChildGuard {
    fn drop(&mut self) {
        if let Some(mut child) = self.child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// The worker-process environment: everything rides the one persistent
/// coordinator connection.
struct RemoteEnv {
    conn: WorkerConn,
    /// This worker's pair index (telemetry sample tag).
    q: u32,
    /// Zero-based trace generation tag (the wire generation is
    /// one-based).
    generation: u32,
    /// Trace events buffered since the last flush. The worker always
    /// collects and streams; the coordinator drops the batches when
    /// tracing is off.
    events: Vec<TraceEvent>,
    /// Local telemetry registry. The worker always records and streams
    /// batches; the coordinator drops them when telemetry is off. The
    /// counter columns ship as zeros — the coordinator's registry is
    /// authoritative and overwrites them on merge.
    telemetry: Telemetry,
    /// Samples already shipped to the coordinator.
    tel_sent: usize,
    /// Histogram snapshots at the last flush (the next batch carries
    /// the bucket-wise delta since these).
    tel_hists: [HistSnapshot; NUM_PHASES],
}

impl RemoteEnv {
    /// Ship buffered trace events to the coordinator (best-effort).
    /// Called once per iteration (from `beat`) and before the outcome
    /// frame, so in-order delivery puts every batch ahead of the
    /// worker's terminal status.
    fn flush_trace(&mut self) {
        if !self.events.is_empty() {
            let batch = imr_trace::encode_events(&self.events);
            self.events.clear();
            self.conn.send_trace(Bytes::from(batch));
        }
    }

    /// Ship the samples and histogram increments recorded since the
    /// last flush (best-effort, same cadence as `flush_trace`).
    fn flush_telemetry(&mut self) {
        let samples = self.telemetry.samples();
        let hists = self.telemetry.hist_snapshots();
        let new_samples = &samples[self.tel_sent.min(samples.len())..];
        let deltas: [HistSnapshot; NUM_PHASES] =
            std::array::from_fn(|i| hists[i].delta(&self.tel_hists[i]));
        if new_samples.is_empty() && deltas.iter().all(|d| d.count() == 0) {
            return;
        }
        self.tel_sent = samples.len();
        self.tel_hists = hists;
        let batch = imr_telemetry::encode_batch(new_samples, &deltas);
        self.conn.send_telemetry(Bytes::from(batch));
    }
}

impl Transport for RemoteEnv {
    fn send(&mut self, dest: usize, seg: Bytes) -> Result<(), Closed> {
        self.conn.send(dest, seg)
    }
    fn recv(&mut self, src: usize) -> Result<Bytes, Closed> {
        self.conn.recv(src)
    }
}

impl PairEnv for RemoteEnv {
    fn is_poisoned(&self) -> bool {
        self.conn.is_poisoned()
    }
    fn barrier_wait(&mut self) -> Result<(), Closed> {
        self.conn.barrier_wait()
    }
    fn exchange_broadcast(&mut self, mine: Bytes) -> Result<Vec<Bytes>, Closed> {
        self.conn.exchange_broadcast(mine)
    }
    fn exchange_distance(&mut self, d: f64, has_prev: bool) -> Result<(f64, bool), Closed> {
        self.conn.exchange_distance(d, has_prev)
    }
    fn read_part(&mut self, dir: &str, part: usize) -> Result<Bytes, EnvFail> {
        self.conn.read_part(dir, part).map_err(|e| match e {
            NetError::Closed => EnvFail::Closed,
            other => EnvFail::Error(other.into()),
        })
    }
    fn write_checkpoint(
        &mut self,
        iteration: usize,
        payload: Bytes,
        hist: &[(f64, bool)],
    ) -> Result<(), EnvFail> {
        self.conn
            .write_checkpoint(iteration, payload, hist.to_vec())
            .map_err(|_| EnvFail::Closed)
    }
    fn beat(&mut self, iteration: usize, busy_secs: f64, d: f64, has_prev: bool) {
        self.flush_trace();
        self.flush_telemetry();
        self.conn.beat(iteration, busy_secs, d, has_prev);
    }
    fn send_delta(&mut self, dest: usize, seg: Bytes) -> Result<(), Closed> {
        self.conn.send_delta(dest, seg)
    }
    fn recv_delta(&mut self, src: usize) -> Result<Bytes, Closed> {
        self.conn.recv_delta(src)
    }
    fn delta_stats(&mut self, deltas: u64, preemptions: u64, checks: u64) {
        self.conn.send_delta_stats(deltas, preemptions, checks);
    }
    fn patch_verify(&mut self, raw: &Bytes, keys: usize) -> Result<(), EnvFail> {
        // Block for the coordinator's patch announcement (sent right
        // after setup at epoch 0), prove the loaded bytes match it,
        // then echo what was decoded so the coordinator can
        // double-check from its side.
        let (bytes, digest) = self.conn.wait_patch().map_err(|_| EnvFail::Closed)?;
        let local = patch_digest(raw);
        if bytes != raw.len() as u64 || digest != local {
            return Err(EnvFail::Error(EngineError::Worker(format!(
                "warm-start patch mismatch: coordinator announced {bytes} bytes \
                 (digest {digest:#018x}), worker loaded {} bytes (digest {local:#018x})",
                raw.len()
            ))));
        }
        self.conn
            .send_patch_stats(keys as u64, raw.len() as u64, local);
        Ok(())
    }
    fn hang(&mut self) {
        self.conn.block_until_poisoned();
    }
    fn trace(&mut self, event: TraceEvent) {
        self.events.push(TraceEvent {
            generation: self.generation,
            ..event
        });
    }
    fn phase(&mut self, phase: Phase, nanos: u64) {
        self.telemetry.record_phase(phase, nanos);
    }
    fn gauge(&mut self, gauge: Gauge, value: u64) {
        self.telemetry.set_gauge(gauge, value);
    }
    fn sample(&mut self, stamp_nanos: u64, iteration: u64) {
        // Counter columns ship as zeros; the coordinator overwrites
        // them from its authoritative registry on merge.
        self.telemetry.sample(
            stamp_nanos,
            self.q,
            self.generation,
            iteration,
            &MetricsSnapshot::default(),
        );
    }
}

/// Entry point for a worker process: connect to the coordinator at
/// `addr`, run `job` as `pair` of `generation` (tagged with `job_id`)
/// to a terminal outcome, report it, exit. The worker binary's `main`
/// parses `<addr> <pair> <generation> <job-id> <job...>` from argv,
/// resolves `job` from the job arguments, and calls this.
///
/// Never returns an error after the handshake: post-handshake failures
/// are reported to the coordinator as outcome frames — except a
/// [`ToWorker::Drain`], which unwinds the pair and returns `Ok` so the
/// process exits cleanly (an orderly shutdown is success, not an
/// abort). A scripted crash hook terminates the process abruptly
/// instead (no outcome, no EOF courtesy — exactly the unscripted-loss
/// shape it simulates).
pub fn serve_worker<J: IterativeJob>(
    job: &J,
    addr: &str,
    pair: usize,
    generation: u64,
    job_id: u64,
) -> Result<(), String> {
    serve_inner(job, addr, pair, generation, job_id, None)
}

/// Like [`serve_worker`], for jobs that also implement
/// [`Accumulative`](imapreduce::Accumulative): when the coordinator's
/// setup frame sets `accumulative`, the worker runs the barrier-free
/// `delta_loop` instead of `pair_loop`. Worker binaries should route
/// every accumulative-capable job through this entry point — it behaves
/// exactly like [`serve_worker`] when the mode is off.
pub fn serve_worker_accum<J: imapreduce::Accumulative>(
    job: &J,
    addr: &str,
    pair: usize,
    generation: u64,
    job_id: u64,
) -> Result<(), String> {
    let accum: RemoteLoop<J> =
        |pair, job, cfg, dirs, plan, epoch, metrics, env, started, ld, id, lc| {
            delta_loop::<J, RemoteEnv>(
                pair, job, cfg, dirs, plan, epoch, metrics, env, started, ld, id, lc,
            )
        };
    serve_inner(job, addr, pair, generation, job_id, Some(accum))
}

/// The worker-thread body a remote worker drives, as a fn pointer so
/// one serving routine covers both iteration modes.
type RemoteLoop<J> = fn(
    usize,
    &J,
    &PairCfg,
    &PairDirs,
    &PairPlan,
    usize,
    &MetricsHandle,
    &mut RemoteEnv,
    Instant,
    &mut Vec<(f64, bool)>,
    &mut Vec<Duration>,
    &mut usize,
) -> Result<PairOutcome, EngineError>;

fn serve_inner<J: IterativeJob>(
    job: &J,
    addr: &str,
    pair: usize,
    generation: u64,
    job_id: u64,
    accum: Option<RemoteLoop<J>>,
) -> Result<(), String> {
    let policy = NetPolicy::from_env();
    let (conn, setup) =
        WorkerConn::connect_with_policy(addr, pair, generation, job_id, HANDOFF_BUFFER, &policy)
            .map_err(|e| format!("pair {pair}: connect/handshake failed: {e}"))?;
    let cfg = PairCfg {
        n: setup.num_tasks,
        one2all: setup.one2all,
        sync: setup.sync,
        threshold: setup.distance_threshold,
        max_iters: setup.max_iterations,
        checkpoint_interval: setup.checkpoint_interval,
        num_state_parts: setup.num_state_parts,
        accumulative: setup.accumulative,
        delta_batch: setup.delta_batch,
        check_every: setup.check_every,
        incremental: setup.incremental,
    };
    let dirs = PairDirs {
        state_dir: setup.state_dir.clone(),
        static_dir: setup.static_dir.clone(),
        output_dir: setup.output_dir.clone(),
    };
    let plan = PairPlan {
        kills: setup.kills.clone(),
        hangs: setup.hangs.clone(),
        delays: setup.delays.clone(),
        speed: setup.speed,
        crash_after: setup.crash_after,
    };
    // Data-path metrics are counted by the coordinator; the worker's
    // local registry is a sink.
    let metrics: MetricsHandle = Arc::new(Metrics::default());
    let started = Instant::now();
    let mut env = RemoteEnv {
        conn,
        q: pair as u32,
        generation: generation.saturating_sub(1) as u32,
        events: Vec::new(),
        telemetry: Telemetry::default(),
        tel_sent: 0,
        tel_hists: Default::default(),
    };
    let mut local_dist: Vec<(f64, bool)> = Vec::new();
    let mut iter_done: Vec<Duration> = Vec::new();
    let mut last_ckpt = setup.epoch;
    let loop_fn: RemoteLoop<J> = if cfg.accumulative {
        match accum {
            Some(f) => f,
            None => {
                // The coordinator asked for the delta loop but this
                // entry point serves a plain iterative job; report the
                // mismatch as an outcome so the supervisor fails fast.
                env.conn.send_outcome(WireOutcome {
                    kind: OutcomeKind::Error,
                    at_iteration: 0,
                    message: format!(
                        "pair {pair}: accumulative mode requested but the worker \
                         serves this job through serve_worker (use serve_worker_accum)"
                    ),
                    payload: Bytes::new(),
                });
                return Ok(());
            }
        }
    } else {
        |pair, job, cfg, dirs, plan, epoch, metrics, env, started, ld, id, lc| {
            pair_loop::<J, RemoteEnv>(
                pair, job, cfg, dirs, plan, epoch, metrics, env, started, ld, id, lc,
            )
        }
    };
    let result = catch_unwind(AssertUnwindSafe(|| {
        loop_fn(
            pair,
            job,
            &cfg,
            &dirs,
            &plan,
            setup.epoch,
            &metrics,
            &mut env,
            started,
            &mut local_dist,
            &mut iter_done,
            &mut last_ckpt,
        )
    }));
    let wire = match result {
        Ok(Ok(PairOutcome::Vanish)) => std::process::exit(0),
        // An orderly drain: the coordinator asked the fleet to shut
        // down. No outcome frame — the abort is policy, and the clean
        // exit status is the whole point of the drain protocol.
        Ok(Ok(PairOutcome::Aborted)) if env.conn.is_drained() => return Ok(()),
        Ok(Ok(PairOutcome::Finished {
            final_data,
            iterations,
        })) => WireOutcome {
            kind: OutcomeKind::Finished,
            at_iteration: iterations,
            message: String::new(),
            payload: final_data,
        },
        Ok(Ok(PairOutcome::Induced { at_iteration })) => WireOutcome {
            kind: OutcomeKind::Induced,
            at_iteration,
            message: String::new(),
            payload: Bytes::new(),
        },
        Ok(Ok(PairOutcome::Stalled { at_iteration })) => WireOutcome {
            kind: OutcomeKind::Stalled,
            at_iteration,
            message: String::new(),
            payload: Bytes::new(),
        },
        Ok(Ok(PairOutcome::Aborted)) => WireOutcome {
            kind: OutcomeKind::Aborted,
            at_iteration: 0,
            message: String::new(),
            payload: Bytes::new(),
        },
        Ok(Err(e)) => WireOutcome {
            kind: OutcomeKind::Error,
            at_iteration: 0,
            message: e.to_string(),
            payload: Bytes::new(),
        },
        Err(payload) => {
            // Same panic surfacing as the thread backend.
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "panicked".to_owned());
            WireOutcome {
                kind: OutcomeKind::Error,
                at_iteration: 0,
                message: format!("pair {pair} panicked: {msg}"),
                payload: Bytes::new(),
            }
        }
    };
    env.flush_trace();
    env.flush_telemetry();
    env.conn.send_outcome(wire);
    // Dropping the connection flushes and shuts the socket down: the
    // coordinator sees the outcome frame, then EOF.
    Ok(())
}
