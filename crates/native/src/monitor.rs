//! Worker heartbeats and the supervisor-side monitor.
//!
//! Every pair publishes a [`ProgressBoard`] heartbeat after each
//! completed iteration: the iteration number, a wall-clock timestamp,
//! its last completed checkpoint epoch, and an EWMA of its effective
//! busy time. A monitor thread polls the board and intervenes in two
//! ways, both by poisoning the generation's `FaultBarrier` so the
//! supervisor's ordinary rollback-and-respawn path takes over:
//!
//! * **Watchdog** (`WatchdogConfig`): when *no* active pair has beaten
//!   for `stall_timeout`, the least-advanced pair is declared stalled.
//!   Requiring a global freeze (rather than one stale pair) avoids
//!   false positives on merely-slow pairs: their peers block on them at
//!   the hand-off channels or barriers, so as long as anyone is
//!   beating, the job is still making progress. The flip side is that
//!   `stall_timeout` must exceed the slowest pair's per-iteration time.
//! * **Load balancing** (§3.4.2): once every pair has checkpointed past
//!   the generation's start epoch (so rollback strictly advances and
//!   the migrate/rollback loop cannot livelock), the per-pair busy
//!   EWMAs are fed to the shared [`ClusterSpec::pick_migration`] policy;
//!   a hit migrates the slowest node's pair to the least-loaded faster
//!   node at the next respawn.

use crate::fault::FaultBarrier;
use imapreduce::WatchdogConfig;
use imr_simcluster::{ClusterSpec, MetricsHandle, NodeId};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// EWMA smoothing for per-pair busy time: `new = α·sample + (1-α)·old`.
const EWMA_ALPHA: f64 = 0.5;

/// How often the monitor wakes to check the `done` flag between
/// evaluation points (keeps generation teardown latency small even
/// under a coarse watchdog poll).
const TICK: Duration = Duration::from_millis(2);

struct Cell {
    /// Absolute index of the last iteration this pair completed.
    iterations: AtomicU64,
    /// Nanoseconds since board creation of the last heartbeat.
    last_beat_nanos: AtomicU64,
    /// Absolute epoch of the pair's last fully written snapshot.
    last_ckpt: AtomicU64,
    /// f64 bit-pattern of the busy-time EWMA (seconds).
    busy_ewma_bits: AtomicU64,
    /// The pair's worker returned (any outcome) — no longer active.
    exited: AtomicBool,
}

/// One generation's shared heartbeat board: lock-free, one cell per
/// pair, written only by the owning worker and read by the monitor.
pub(crate) struct ProgressBoard {
    started: Instant,
    epoch: usize,
    cells: Vec<Cell>,
}

impl ProgressBoard {
    /// A fresh board for a generation starting at checkpoint `epoch`.
    pub(crate) fn new(n: usize, epoch: usize) -> Self {
        ProgressBoard {
            started: Instant::now(),
            epoch,
            cells: (0..n)
                .map(|_| Cell {
                    iterations: AtomicU64::new(epoch as u64),
                    last_beat_nanos: AtomicU64::new(0),
                    last_ckpt: AtomicU64::new(epoch as u64),
                    busy_ewma_bits: AtomicU64::new(0f64.to_bits()),
                    exited: AtomicBool::new(false),
                })
                .collect(),
        }
    }

    fn nanos_now(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Worker `q` completed absolute iteration `iteration`, spending
    /// `busy_secs` of effective processing time on it.
    pub(crate) fn beat(&self, q: usize, iteration: usize, busy_secs: f64) {
        let cell = &self.cells[q];
        let first = cell.iterations.load(Ordering::Relaxed) == self.epoch as u64;
        let prev = f64::from_bits(cell.busy_ewma_bits.load(Ordering::Relaxed));
        let ewma = if first {
            busy_secs
        } else {
            EWMA_ALPHA * busy_secs + (1.0 - EWMA_ALPHA) * prev
        };
        cell.busy_ewma_bits.store(ewma.to_bits(), Ordering::Relaxed);
        cell.iterations.store(iteration as u64, Ordering::Relaxed);
        cell.last_beat_nanos
            .store(self.nanos_now(), Ordering::Release);
    }

    /// Worker `q` finished writing the snapshot of iteration `epoch`.
    pub(crate) fn mark_ckpt(&self, q: usize, epoch: usize) {
        self.cells[q]
            .last_ckpt
            .store(epoch as u64, Ordering::Release);
    }

    /// Worker `q` returned; it no longer counts as active.
    pub(crate) fn mark_exited(&self, q: usize) {
        self.cells[q].exited.store(true, Ordering::Release);
    }
}

/// What the monitor decided before the generation died.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Intervention {
    /// The watchdog declared `pair` stalled and poisoned the barrier.
    Stall {
        /// The least-advanced active pair at detection time.
        pair: usize,
    },
    /// The balancer decided to migrate `pair` onto node `to` and
    /// poisoned the barrier to force a rollback under the new placement.
    Migrate {
        /// The pair leaving the overloaded node.
        pair: usize,
        /// Its new host.
        to: NodeId,
    },
}

/// Load-balancing inputs for one generation.
pub(crate) struct BalancePlan<'a> {
    /// The cluster whose shared §3.4.2 policy picks migrations.
    pub cluster: &'a ClusterSpec,
    /// Current pair→node placement.
    pub assignment: &'a [NodeId],
    /// `LoadBalance::deviation` threshold.
    pub deviation: f64,
    /// Migrations still allowed (`max_migrations` minus those done).
    pub remaining: usize,
}

/// The monitor loop, run on its own thread inside the generation's
/// scope. Returns the intervention that killed the generation, or
/// `None` if the workers ended it themselves (`done` set, or the
/// barrier was already poisoned by a scripted exit / worker error).
pub(crate) fn monitor_loop(
    board: &ProgressBoard,
    barrier: &FaultBarrier,
    done: &AtomicBool,
    watchdog: Option<WatchdogConfig>,
    balance: Option<BalancePlan<'_>>,
    metrics: &MetricsHandle,
) -> Option<Intervention> {
    let poll = watchdog
        .map(|wd| wd.poll)
        .unwrap_or(Duration::from_millis(25));
    let mut last_eval = Instant::now();
    loop {
        if done.load(Ordering::Acquire) {
            return None;
        }
        std::thread::sleep(TICK);
        if last_eval.elapsed() < poll {
            continue;
        }
        last_eval = Instant::now();
        if barrier.is_poisoned() {
            // A scripted exit or worker error is already tearing the
            // generation down; the supervisor handles it.
            return None;
        }
        if let Some(wd) = watchdog {
            if let Some(pair) = detect_stall(board, wd.stall_timeout) {
                metrics.stalls_detected.add(1);
                barrier.poison();
                return Some(Intervention::Stall { pair });
            }
        }
        if let Some(plan) = &balance {
            if plan.remaining > 0 {
                if let Some((pair, to)) = pick_native_migration(board, plan) {
                    barrier.poison();
                    return Some(Intervention::Migrate { pair, to });
                }
            }
        }
    }
}

/// The watchdog rule: a stall is declared only when *every* active pair
/// has been silent for `stall_timeout`; the victim is the
/// least-advanced active pair (ties to the lowest index).
fn detect_stall(board: &ProgressBoard, stall_timeout: Duration) -> Option<usize> {
    let now = board.nanos_now();
    let timeout = u64::try_from(stall_timeout.as_nanos()).unwrap_or(u64::MAX);
    let mut victim: Option<(u64, usize)> = None;
    for (q, cell) in board.cells.iter().enumerate() {
        if cell.exited.load(Ordering::Acquire) {
            continue;
        }
        let beat = cell.last_beat_nanos.load(Ordering::Acquire);
        if now.saturating_sub(beat) < timeout {
            return None; // someone is still making progress
        }
        let iters = cell.iterations.load(Ordering::Relaxed);
        if victim.map(|(best, _)| iters < best).unwrap_or(true) {
            victim = Some((iters, q));
        }
    }
    victim.map(|(_, q)| q)
}

/// The migration precondition + the shared §3.4.2 policy. Gated on
/// every pair having both progressed *and* checkpointed past the
/// generation's start epoch: the post-migration rollback then lands on
/// a strictly newer epoch, so repeated migrations always advance the
/// job (no livelock), and the EWMAs have at least one real sample.
fn pick_native_migration(board: &ProgressBoard, plan: &BalancePlan<'_>) -> Option<(usize, NodeId)> {
    let epoch = board.epoch as u64;
    let mut busy = Vec::with_capacity(board.cells.len());
    for cell in &board.cells {
        if cell.exited.load(Ordering::Acquire) {
            return None; // endgame: the generation is about to finish
        }
        if cell.iterations.load(Ordering::Relaxed) <= epoch
            || cell.last_ckpt.load(Ordering::Acquire) <= epoch
        {
            return None;
        }
        busy.push(f64::from_bits(cell.busy_ewma_bits.load(Ordering::Relaxed)));
    }
    plan.cluster
        .pick_migration(plan.assignment, &busy, plan.deviation)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn beat_folds_an_ewma_and_advances_the_cell() {
        let board = ProgressBoard::new(2, 3);
        board.beat(0, 4, 2.0); // first sample: taken as-is
        board.beat(0, 5, 4.0); // 0.5·4 + 0.5·2 = 3
        let cell = &board.cells[0];
        assert_eq!(cell.iterations.load(Ordering::Relaxed), 5);
        assert_eq!(
            f64::from_bits(cell.busy_ewma_bits.load(Ordering::Relaxed)),
            3.0
        );
        // Pair 1 never beat: still at the epoch.
        assert_eq!(board.cells[1].iterations.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn stall_needs_every_active_pair_silent() {
        let board = ProgressBoard::new(3, 0);
        std::thread::sleep(Duration::from_millis(30));
        // All three silent since creation → stall, least-advanced wins.
        board.cells[1].iterations.store(2, Ordering::Relaxed);
        assert_eq!(detect_stall(&board, Duration::from_millis(10)), Some(0));
        // One fresh heartbeat anywhere keeps the job alive.
        board.beat(2, 1, 0.1);
        assert_eq!(detect_stall(&board, Duration::from_millis(10)), None);
    }

    #[test]
    fn exited_pairs_do_not_count_toward_stalls() {
        let board = ProgressBoard::new(2, 0);
        std::thread::sleep(Duration::from_millis(20));
        board.mark_exited(0);
        assert_eq!(detect_stall(&board, Duration::from_millis(5)), Some(1));
        board.mark_exited(1);
        assert_eq!(detect_stall(&board, Duration::from_millis(5)), None);
    }

    #[test]
    fn migration_waits_for_checkpoint_progress_then_fires() {
        let mut spec = ClusterSpec::local(3);
        spec.nodes[0].speed = 0.2;
        let assignment = vec![NodeId(0), NodeId(1), NodeId(2)];
        let board = ProgressBoard::new(3, 0);
        let plan = BalancePlan {
            cluster: &spec,
            assignment: &assignment,
            deviation: 0.3,
            remaining: 1,
        };
        // Busy skew present but pair 0 has not checkpointed yet.
        board.beat(0, 1, 5.0);
        board.beat(1, 1, 1.0);
        board.beat(2, 1, 1.0);
        board.mark_ckpt(1, 1);
        board.mark_ckpt(2, 1);
        assert_eq!(pick_native_migration(&board, &plan), None);
        // Once everyone checkpointed past the epoch, the shared policy
        // moves pair 0 off the slow node.
        board.mark_ckpt(0, 1);
        assert_eq!(pick_native_migration(&board, &plan), Some((0, NodeId(1))));
    }

    #[test]
    fn monitor_exits_quietly_when_done_or_poisoned() {
        let metrics: MetricsHandle = Arc::new(imr_simcluster::Metrics::default());
        let board = ProgressBoard::new(1, 0);
        let barrier = FaultBarrier::new(1);
        let done = AtomicBool::new(true);
        assert_eq!(
            monitor_loop(&board, &barrier, &done, None, None, &metrics),
            None
        );
        let done = AtomicBool::new(false);
        barrier.poison();
        let wd = WatchdogConfig {
            poll: Duration::from_millis(1),
            stall_timeout: Duration::from_millis(1),
        };
        assert_eq!(
            monitor_loop(&board, &barrier, &done, Some(wd), None, &metrics),
            None
        );
        assert_eq!(metrics.stalls_detected.get(), 0);
    }

    #[test]
    fn monitor_declares_a_stall_and_poisons() {
        let metrics: MetricsHandle = Arc::new(imr_simcluster::Metrics::default());
        let board = ProgressBoard::new(2, 0);
        let barrier = FaultBarrier::new(2);
        let done = AtomicBool::new(false);
        let wd = WatchdogConfig {
            poll: Duration::from_millis(5),
            stall_timeout: Duration::from_millis(20),
        };
        let hit = monitor_loop(&board, &barrier, &done, Some(wd), None, &metrics);
        assert_eq!(hit, Some(Intervention::Stall { pair: 0 }));
        assert!(barrier.is_poisoned());
        assert_eq!(metrics.stalls_detected.get(), 1);
    }
}
