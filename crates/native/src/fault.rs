//! Failure-aware synchronization for the native backend.
//!
//! A plain barrier deadlocks the moment one participant dies: the
//! survivors wait forever for an arrival that will never come. Worker
//! threads here can exit mid-iteration (scripted fault injection,
//! §3.4.1 recovery tests, or a real panic in job code), so every rally
//! point uses a [`FaultBarrier`]: an exiting worker poisons it, which
//! wakes all current waiters and makes every future wait fail fast.
//! The supervisor then tears the generation down and respawns it from
//! the last checkpoint instead of hanging.
//!
//! Built on `std::sync::Mutex` + `Condvar` (the vendored `parking_lot`
//! deliberately omits condition variables).

use std::sync::{Condvar, Mutex};

/// Error returned by [`FaultBarrier::wait`] when a participant died.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Poisoned;

struct BarrierState {
    /// Arrivals in the current round.
    count: usize,
    /// Completed rounds; waiters key off this to detect release.
    round: u64,
    poisoned: bool,
}

/// A reusable barrier for `n` threads that can be poisoned.
pub struct FaultBarrier {
    state: Mutex<BarrierState>,
    cv: Condvar,
    n: usize,
}

impl FaultBarrier {
    /// A barrier rallying `n` participants per round.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a barrier needs at least one participant");
        FaultBarrier {
            state: Mutex::new(BarrierState {
                count: 0,
                round: 0,
                poisoned: false,
            }),
            cv: Condvar::new(),
            n,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BarrierState> {
        // A std mutex is only poisoned if a holder panicked; our
        // critical sections cannot panic, but recover regardless.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Blocks until all `n` participants arrive, or until the barrier
    /// is poisoned. A round that completed before the poison still
    /// returns `Ok` to its waiters — their rally did happen.
    pub fn wait(&self) -> Result<(), Poisoned> {
        let mut s = self.lock();
        if s.poisoned {
            return Err(Poisoned);
        }
        let round = s.round;
        s.count += 1;
        if s.count == self.n {
            s.count = 0;
            s.round += 1;
            self.cv.notify_all();
            return Ok(());
        }
        while s.round == round && !s.poisoned {
            s = self.cv.wait(s).unwrap_or_else(|e| e.into_inner());
        }
        if s.round == round {
            // Never released: a participant died instead of arriving.
            Err(Poisoned)
        } else {
            Ok(())
        }
    }

    /// Marks the barrier dead and wakes every current waiter. Called by
    /// any worker exiting abnormally; idempotent.
    pub fn poison(&self) {
        let mut s = self.lock();
        s.poisoned = true;
        self.cv.notify_all();
    }

    /// Whether the barrier has been poisoned.
    pub fn is_poisoned(&self) -> bool {
        self.lock().poisoned
    }

    /// Blocks until the barrier is poisoned, without participating in
    /// any round. Used by a worker emulating a hung pair
    /// (`FaultEvent::Hang`): it stops responding entirely until the
    /// supervisor's watchdog declares it failed and tears the
    /// generation down.
    pub fn block_until_poisoned(&self) {
        let mut s = self.lock();
        while !s.poisoned {
            s = self.cv.wait(s).unwrap_or_else(|e| e.into_inner());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn releases_full_rounds_repeatedly() {
        let barrier = Arc::new(FaultBarrier::new(3));
        let rounds = Arc::new(AtomicUsize::new(0));
        thread::scope(|scope| {
            for _ in 0..3 {
                let barrier = Arc::clone(&barrier);
                let rounds = Arc::clone(&rounds);
                scope.spawn(move || {
                    for _ in 0..10 {
                        barrier.wait().unwrap();
                        rounds.fetch_add(1, Ordering::SeqCst);
                    }
                });
            }
        });
        assert_eq!(rounds.load(Ordering::SeqCst), 30);
    }

    #[test]
    fn poison_wakes_blocked_waiters() {
        let barrier = Arc::new(FaultBarrier::new(2));
        thread::scope(|scope| {
            let waiter = {
                let barrier = Arc::clone(&barrier);
                scope.spawn(move || barrier.wait())
            };
            // Give the waiter time to block, then kill the barrier the
            // way a dying worker would.
            thread::sleep(Duration::from_millis(20));
            barrier.poison();
            assert_eq!(waiter.join().unwrap(), Err(Poisoned));
        });
        assert!(barrier.is_poisoned());
    }

    #[test]
    fn wait_after_poison_fails_immediately() {
        let barrier = FaultBarrier::new(4);
        barrier.poison();
        barrier.poison(); // idempotent
        assert_eq!(barrier.wait(), Err(Poisoned));
    }

    #[test]
    fn concurrent_double_poison_in_one_generation_wakes_everyone() {
        // Two pairs die at the same iteration (a double failure inside
        // one generation): both race to poison while the remaining
        // participants are blocked mid-round. Every waiter must wake
        // with `Poisoned`, and the double poison must stay idempotent.
        for _ in 0..50 {
            let barrier = Arc::new(FaultBarrier::new(4));
            let poisoned_seen = Arc::new(AtomicUsize::new(0));
            thread::scope(|scope| {
                for _ in 0..2 {
                    let barrier = Arc::clone(&barrier);
                    let poisoned_seen = Arc::clone(&poisoned_seen);
                    scope.spawn(move || {
                        if barrier.wait() == Err(Poisoned) {
                            poisoned_seen.fetch_add(1, Ordering::SeqCst);
                        }
                    });
                }
                for _ in 0..2 {
                    let barrier = Arc::clone(&barrier);
                    scope.spawn(move || barrier.poison());
                }
            });
            assert!(barrier.is_poisoned());
            assert_eq!(poisoned_seen.load(Ordering::SeqCst), 2);
            assert_eq!(barrier.wait(), Err(Poisoned));
        }
    }

    #[test]
    fn block_until_poisoned_sleeps_through_rounds_then_wakes() {
        let barrier = Arc::new(FaultBarrier::new(1));
        thread::scope(|scope| {
            let hung = {
                let barrier = Arc::clone(&barrier);
                scope.spawn(move || barrier.block_until_poisoned())
            };
            // Rounds completing around the hung thread must not wake it.
            barrier.wait().unwrap();
            barrier.wait().unwrap();
            thread::sleep(Duration::from_millis(20));
            assert!(!hung.is_finished());
            barrier.poison();
            hung.join().unwrap();
        });
    }

    #[test]
    fn completed_round_still_succeeds_if_poisoned_later() {
        // Thread A completes a round with B; B then poisons before A
        // rechecks — A's rally happened, so A must still see Ok.
        let barrier = Arc::new(FaultBarrier::new(1));
        barrier.wait().unwrap();
        barrier.poison();
        assert_eq!(barrier.wait(), Err(Poisoned));
    }
}
