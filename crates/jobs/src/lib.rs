//! # imr-jobs — multi-tenant job service over the iMapReduce engines
//!
//! The paper treats one iterative job at a time; real deployments run
//! many. This crate adds the service layer that shares one fleet of
//! task slots among concurrent iterative jobs:
//!
//! * **Catalog** ([`catalog`]) — every job's typed [`JobSpec`] and
//!   lifecycle [`JobMeta`] journaled to the DFS under a per-job
//!   namespace, so storage (not the coordinator process) is the source
//!   of truth and tenants are isolated by construction.
//! * **Admission queue** ([`queue`]) — priority-ordered, slot-aware,
//!   strict head-of-line admission (deterministic and starvation-free).
//! * **Fleet scheduler** ([`service`]) — [`JobService::run_until_idle`]
//!   admits jobs while their slot footprint fits, runs each attempt on
//!   its own engine instance with its own [`RunCtl`](imapreduce::RunCtl)
//!   and trace ring, and journals every transition.
//! * **Durable resume** — a killed-and-restarted coordinator
//!   ([`JobService::recover`]) requeues every in-flight job with the
//!   engine-level resume flag, restarting from the newest complete
//!   checkpoint snapshot (§3.4.1's checkpoints, reused as a service
//!   journal) and producing bit-identical results.
//! * **Dead-letter queue** — a job that exhausts its retry budget is
//!   journaled as dead with a [`DlqEntry`] and its flight-recorder
//!   artifact, instead of wedging the queue.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod exec;
pub mod queue;
pub mod service;
pub mod spec;

pub use catalog::{DlqEntry, JobId, JobMeta, JobPhase};
pub use exec::{ExecCtx, Halve, ResultRecord};
pub use queue::{Admission, AdmissionQueue};
pub use service::{JobService, JobStatus, ServiceConfig};
pub use spec::{AlgoSpec, EngineSel, FaultPolicy, InputSpec, JobSpec};
