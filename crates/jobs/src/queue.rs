//! The admission queue: priority-ordered, slot-aware, starvation-free.
//!
//! Jobs wait here until the fleet has enough free task slots. Ordering
//! is priority-descending with submission order breaking ties, and
//! admission is strict head-of-line: only the head job is ever
//! admitted, and only when its full slot footprint fits. Skipping a
//! wide head job to admit a narrow one behind it would starve wide jobs
//! forever under a steady trickle of narrow ones; holding the line
//! keeps admission deterministic and fair at the cost of some
//! transient slot idleness.

use crate::catalog::JobId;

/// One queued admission request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Admission {
    /// Which job wants to run.
    pub id: JobId,
    /// Its spec priority (higher first).
    pub priority: u8,
    /// Queue-entry sequence number (earlier first within a priority).
    pub seq: u64,
    /// Task slots the job occupies while running.
    pub tasks: usize,
    /// Whether the executor should resume from the newest complete
    /// checkpoint snapshot instead of starting fresh.
    pub resume: bool,
}

/// Priority queue over [`Admission`]s. Not thread-safe by itself — the
/// service guards it with its state lock.
#[derive(Debug, Default)]
pub struct AdmissionQueue {
    /// Kept sorted: best head last (so admission pops from the back).
    items: Vec<Admission>,
    next_seq: u64,
}

impl AdmissionQueue {
    /// An empty queue.
    pub fn new() -> Self {
        AdmissionQueue::default()
    }

    /// Enqueues a job, assigning its sequence number.
    pub fn push(&mut self, id: JobId, priority: u8, tasks: usize, resume: bool) {
        let adm = Admission {
            id,
            priority,
            seq: self.next_seq,
            tasks,
            resume,
        };
        self.next_seq += 1;
        self.items.push(adm);
        // Worst-first so the head sits at the back; `seq` is unique,
        // making the order total and the sort stable by construction.
        self.items
            .sort_unstable_by_key(|a| (a.priority, std::cmp::Reverse(a.seq)));
    }

    /// The admission the scheduler would run next, if any.
    pub fn head(&self) -> Option<&Admission> {
        self.items.last()
    }

    /// Pops the head job iff its whole footprint fits in `free_slots`
    /// (strict head-of-line admission).
    pub fn pop_admissible(&mut self, free_slots: usize) -> Option<Admission> {
        if self.head().is_some_and(|h| h.tasks <= free_slots) {
            self.items.pop()
        } else {
            None
        }
    }

    /// Number of queued jobs.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Queued admissions in admission order (head first).
    pub fn snapshot(&self) -> Vec<Admission> {
        self.items.iter().rev().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_then_submission_order() {
        let mut q = AdmissionQueue::new();
        q.push(1, 0, 1, false);
        q.push(2, 5, 1, false);
        q.push(3, 5, 1, false);
        q.push(4, 9, 1, false);
        let order: Vec<JobId> = q.snapshot().iter().map(|a| a.id).collect();
        assert_eq!(order, vec![4, 2, 3, 1]);
        assert_eq!(q.pop_admissible(8).unwrap().id, 4);
        assert_eq!(q.pop_admissible(8).unwrap().id, 2);
        assert_eq!(q.pop_admissible(8).unwrap().id, 3);
        assert_eq!(q.pop_admissible(8).unwrap().id, 1);
        assert!(q.pop_admissible(8).is_none());
    }

    #[test]
    fn head_of_line_blocks_narrow_followers() {
        let mut q = AdmissionQueue::new();
        q.push(1, 7, 4, false); // wide, high priority
        q.push(2, 0, 1, false); // narrow, low priority
                                // Only 2 slots free: the wide head does not fit, and the narrow
                                // job behind it must NOT jump the line.
        assert!(q.pop_admissible(2).is_none());
        assert_eq!(q.len(), 2);
        // Once the fleet frees up, the wide job goes first.
        assert_eq!(q.pop_admissible(4).unwrap().id, 1);
        assert_eq!(q.pop_admissible(1).unwrap().id, 2);
    }

    #[test]
    fn requeue_preserves_resume_flag() {
        let mut q = AdmissionQueue::new();
        q.push(9, 3, 2, true);
        let adm = q.pop_admissible(2).unwrap();
        assert!(adm.resume);
        assert!(q.is_empty());
    }
}
