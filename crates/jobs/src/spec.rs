//! Typed job specifications: what a tenant submits to the service.
//!
//! A [`JobSpec`] pins everything needed to (re)run a job
//! deterministically — algorithm, generated input (seed + scale),
//! engine selection, iteration/checkpoint budget, priority and fault
//! policy — and is itself `Codec`-encodable, so the catalog journals it
//! to the DFS at submission and a restarted coordinator can rebuild the
//! exact job from storage alone.

use bytes::{Bytes, BytesMut};
use imr_records::{Codec, CodecError, CodecResult};

/// Which algorithm a job runs. The input is always generated
/// deterministically from [`InputSpec`], so the pair
/// `(algo, input)` fully determines the job's data.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlgoSpec {
    /// The halving micro-job (one2one): every state is halved each
    /// iteration. `scale` keys, initial value 1024.
    Halve,
    /// Single-source shortest path from node 0 over a generated
    /// weighted graph of `scale` nodes.
    Sssp,
    /// PageRank over a generated graph of `scale` nodes.
    PageRank,
    /// K-means (one2all) over `scale` generated 2-D points, 3 true
    /// clusters.
    Kmeans,
    /// A job whose reduce panics deterministically on every attempt:
    /// the dead-letter-queue test vehicle. Thread engine only.
    PoisonPill,
}

impl AlgoSpec {
    /// Catalog name (also the worker-binary job argument where one
    /// exists).
    pub fn name(&self) -> &'static str {
        match self {
            AlgoSpec::Halve => "halve",
            AlgoSpec::Sssp => "sssp",
            AlgoSpec::PageRank => "pagerank",
            AlgoSpec::Kmeans => "kmeans",
            AlgoSpec::PoisonPill => "poison",
        }
    }

    fn tag(&self) -> u8 {
        match self {
            AlgoSpec::Halve => 0,
            AlgoSpec::Sssp => 1,
            AlgoSpec::PageRank => 2,
            AlgoSpec::Kmeans => 3,
            AlgoSpec::PoisonPill => 4,
        }
    }

    fn from_tag(tag: u8) -> CodecResult<Self> {
        Ok(match tag {
            0 => AlgoSpec::Halve,
            1 => AlgoSpec::Sssp,
            2 => AlgoSpec::PageRank,
            3 => AlgoSpec::Kmeans,
            4 => AlgoSpec::PoisonPill,
            _ => return Err(CodecError::Corrupt("unknown algorithm tag")),
        })
    }
}

/// Which engine executes the job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineSel {
    /// The virtual-time simulation engine (`IterativeRunner`).
    Sim,
    /// The native thread backend (`NativeRunner::run_faults`).
    Threads,
    /// The native multi-process TCP backend
    /// (`NativeRunner::run_remote`); needs a worker binary.
    Tcp,
}

impl EngineSel {
    fn tag(&self) -> u8 {
        match self {
            EngineSel::Sim => 0,
            EngineSel::Threads => 1,
            EngineSel::Tcp => 2,
        }
    }

    fn from_tag(tag: u8) -> CodecResult<Self> {
        Ok(match tag {
            0 => EngineSel::Sim,
            1 => EngineSel::Threads,
            2 => EngineSel::Tcp,
            _ => return Err(CodecError::Corrupt("unknown engine tag")),
        })
    }
}

/// Deterministic input generation parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InputSpec {
    /// RNG seed for the generators.
    pub seed: u64,
    /// Problem size (keys, graph nodes, or points, per algorithm).
    pub scale: usize,
}

/// How many times the service re-runs a failing job before
/// dead-lettering it. `max_retries = 2` means up to 3 attempts total.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPolicy {
    /// Retry budget after the first failed attempt.
    pub max_retries: u32,
}

impl Default for FaultPolicy {
    fn default() -> Self {
        FaultPolicy { max_retries: 2 }
    }
}

/// A complete, journalable job description.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// Human-readable label (also the `IterConfig` job name).
    pub name: String,
    /// Algorithm to run.
    pub algo: AlgoSpec,
    /// Deterministic input parameters.
    pub input: InputSpec,
    /// Engine selection.
    pub engine: EngineSel,
    /// Number of persistent map/reduce pairs (= task slots consumed
    /// while running).
    pub tasks: usize,
    /// Iteration cap.
    pub max_iters: usize,
    /// Checkpoint every this many iterations (0 disables snapshots —
    /// and with them durable resume).
    pub checkpoint_interval: usize,
    /// Distance-based termination threshold, if any (§3.1.2).
    pub distance_threshold: Option<f64>,
    /// Admission priority: higher runs first; ties in submission order.
    pub priority: u8,
    /// Retry budget before the dead-letter queue.
    pub fault: FaultPolicy,
}

impl JobSpec {
    /// A spec with service-friendly defaults: 2 tasks, 6 iterations,
    /// checkpoint every 2, priority 0, 2 retries.
    pub fn new(name: impl Into<String>, algo: AlgoSpec, engine: EngineSel, seed: u64) -> Self {
        JobSpec {
            name: name.into(),
            algo,
            input: InputSpec { seed, scale: 64 },
            engine,
            tasks: 2,
            max_iters: 6,
            checkpoint_interval: 2,
            distance_threshold: None,
            priority: 0,
            fault: FaultPolicy::default(),
        }
    }

    /// Sets the problem scale.
    pub fn with_scale(mut self, scale: usize) -> Self {
        self.input.scale = scale;
        self
    }

    /// Sets the pair count (slot footprint).
    pub fn with_tasks(mut self, tasks: usize) -> Self {
        self.tasks = tasks;
        self
    }

    /// Sets the iteration cap.
    pub fn with_max_iters(mut self, max_iters: usize) -> Self {
        self.max_iters = max_iters;
        self
    }

    /// Sets the checkpoint interval.
    pub fn with_checkpoint_interval(mut self, interval: usize) -> Self {
        self.checkpoint_interval = interval;
        self
    }

    /// Sets the distance-based termination threshold.
    pub fn with_distance_threshold(mut self, eps: f64) -> Self {
        self.distance_threshold = Some(eps);
        self
    }

    /// Sets the admission priority (higher runs first).
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the retry budget.
    pub fn with_max_retries(mut self, max_retries: u32) -> Self {
        self.fault = FaultPolicy { max_retries };
        self
    }
}

impl Codec for JobSpec {
    fn encode(&self, buf: &mut BytesMut) {
        self.name.encode(buf);
        self.algo.tag().encode(buf);
        self.input.seed.encode(buf);
        self.input.scale.encode(buf);
        self.engine.tag().encode(buf);
        self.tasks.encode(buf);
        self.max_iters.encode(buf);
        self.checkpoint_interval.encode(buf);
        self.distance_threshold.encode(buf);
        self.priority.encode(buf);
        self.fault.max_retries.encode(buf);
    }

    fn decode(buf: &mut Bytes) -> CodecResult<Self> {
        let name = String::decode(buf)?;
        let algo = AlgoSpec::from_tag(u8::decode(buf)?)?;
        let seed = u64::decode(buf)?;
        let scale = usize::decode(buf)?;
        let engine = EngineSel::from_tag(u8::decode(buf)?)?;
        let tasks = usize::decode(buf)?;
        let max_iters = usize::decode(buf)?;
        let checkpoint_interval = usize::decode(buf)?;
        let distance_threshold = Option::<f64>::decode(buf)?;
        let priority = u8::decode(buf)?;
        let max_retries = u32::decode(buf)?;
        Ok(JobSpec {
            name,
            algo,
            input: InputSpec { seed, scale },
            engine,
            tasks,
            max_iters,
            checkpoint_interval,
            distance_threshold,
            priority,
            fault: FaultPolicy { max_retries },
        })
    }

    fn encoded_len(&self) -> usize {
        self.name.encoded_len()
            + self.algo.tag().encoded_len()
            + self.input.seed.encoded_len()
            + self.input.scale.encoded_len()
            + self.engine.tag().encoded_len()
            + self.tasks.encoded_len()
            + self.max_iters.encoded_len()
            + self.checkpoint_interval.encoded_len()
            + self.distance_threshold.encoded_len()
            + self.priority.encoded_len()
            + self.fault.max_retries.encoded_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_round_trip_through_the_codec() {
        let specs = vec![
            JobSpec::new("a", AlgoSpec::Halve, EngineSel::Threads, 1),
            JobSpec::new("b", AlgoSpec::Sssp, EngineSel::Tcp, 2)
                .with_scale(200)
                .with_tasks(3)
                .with_max_iters(9)
                .with_checkpoint_interval(3)
                .with_distance_threshold(1e-9)
                .with_priority(7)
                .with_max_retries(0),
            JobSpec::new("c", AlgoSpec::PoisonPill, EngineSel::Sim, 3),
            JobSpec::new("d", AlgoSpec::Kmeans, EngineSel::Threads, 4),
            JobSpec::new("e", AlgoSpec::PageRank, EngineSel::Threads, 5),
        ];
        for spec in specs {
            let bytes = spec.to_bytes();
            assert_eq!(bytes.len(), spec.encoded_len());
            let mut buf = bytes;
            let back = JobSpec::decode(&mut buf).unwrap();
            assert!(buf.is_empty());
            assert_eq!(back, spec);
        }
    }

    #[test]
    fn bad_tags_are_rejected() {
        let mut spec = JobSpec::new("x", AlgoSpec::Halve, EngineSel::Sim, 0);
        spec.name = "t".into();
        let mut buf = BytesMut::new();
        spec.name.encode(&mut buf);
        99u8.encode(&mut buf); // bogus algo tag
        let mut bytes = buf.freeze();
        assert!(JobSpec::decode(&mut bytes).is_err());
    }
}
