//! One job attempt: deterministic input generation, engine dispatch,
//! and result capture.
//!
//! Inputs are generated from the spec's `(seed, scale)` on first use
//! and land in the job's own DFS subtree, so a retry or a resumed
//! attempt finds them already in place (generation is skipped when the
//! state directory is non-empty). The captured [`ResultRecord`] encodes
//! the final state with the workspace codec, which is what makes
//! "resumed run equals uninterrupted run" checkable bit-for-bit.

use crate::catalog::{self, JobId};
use crate::spec::{AlgoSpec, EngineSel, JobSpec};
use bytes::{Bytes, BytesMut};
use imapreduce::{
    load_partitioned, ChaosConfig, Emitter, EngineError, IterConfig, IterativeJob, IterativeRunner,
    NetPolicy, RunCtl, StateInput, WatchdogConfig,
};
use imr_algorithms::kmeans::{load_kmeans_imr, KmeansIter};
use imr_algorithms::pagerank::{load_pagerank_imr, PageRankIter};
use imr_algorithms::sssp::{load_sssp_imr, SsspIter};
use imr_dfs::Dfs;
use imr_graph::{
    generate_graph, generate_points, generate_weighted_graph, pagerank_degree_dist,
    sssp_degree_dist, sssp_weight_dist,
};
use imr_native::{NativeRunner, WorkerSpec};
use imr_records::{encode_pairs, Codec, CodecResult};
use imr_simcluster::{ClusterSpec, MetricsHandle, TaskClock};
use imr_telemetry::TelemetryHandle;
use imr_trace::TraceHandle;
use std::path::PathBuf;
use std::sync::Arc;

/// K-means cluster count used by generated inputs.
const KMEANS_K: usize = 3;

/// Everything an attempt needs from the service, owned so attempts can
/// run on their own threads.
#[derive(Clone)]
pub struct ExecCtx {
    /// The service's shared DFS.
    pub dfs: Dfs,
    /// Cluster the simulation engine models.
    pub cluster: Arc<ClusterSpec>,
    /// Shared metrics registry.
    pub metrics: MetricsHandle,
    /// Service namespace root in the DFS.
    pub ns: String,
    /// Worker binary for TCP-engine jobs.
    pub worker_bin: Option<PathBuf>,
    /// Chaos schedule applied to TCP-engine attempts (`None` = clean).
    pub chaos: Option<ChaosConfig>,
}

/// What a completed job leaves in the catalog: enough to compare two
/// runs bit-for-bit without re-decoding typed state.
#[derive(Clone, Debug, PartialEq)]
pub struct ResultRecord {
    /// Iterations executed.
    pub iterations: u64,
    /// Per-iteration global distances.
    pub distances: Vec<f64>,
    /// Final state, key-sorted and codec-encoded.
    pub state: Bytes,
}

impl Codec for ResultRecord {
    fn encode(&self, buf: &mut BytesMut) {
        self.iterations.encode(buf);
        self.distances.encode(buf);
        self.state.encode(buf);
    }

    fn decode(buf: &mut Bytes) -> CodecResult<Self> {
        Ok(ResultRecord {
            iterations: u64::decode(buf)?,
            distances: Vec::<f64>::decode(buf)?,
            state: Bytes::decode(buf)?,
        })
    }

    fn encoded_len(&self) -> usize {
        self.iterations.encoded_len() + self.distances.encoded_len() + self.state.encoded_len()
    }
}

/// Each key's state is halved every iteration — the deterministic
/// micro-job (same computation the `imr-worker` catalog resolves for
/// `"halve"`, so TCP-engine jobs agree with the coordinator).
pub struct Halve;

impl IterativeJob for Halve {
    type K = u32;
    type S = f64;
    type T = ();

    fn map(&self, k: &u32, s: StateInput<'_, u32, f64>, _t: &(), out: &mut Emitter<u32, f64>) {
        out.emit(*k, s.one() / 2.0);
    }

    fn reduce(&self, _k: &u32, values: Vec<f64>) -> f64 {
        values.into_iter().sum()
    }

    fn distance(&self, _k: &u32, prev: &f64, cur: &f64) -> f64 {
        (prev - cur).abs()
    }
}

/// Runs one attempt of `spec` as job `id`: generates missing input,
/// builds the engine config (with durable resume when `resume` is set
/// and the spec checkpoints), dispatches on the selected engine, and
/// captures the outcome.
pub fn run_job(
    ctx: &ExecCtx,
    id: JobId,
    spec: &JobSpec,
    resume: bool,
    ctl: RunCtl,
    trace: TraceHandle,
    telemetry: TelemetryHandle,
) -> Result<ResultRecord, EngineError> {
    let state = catalog::state_dir(&ctx.ns, id);
    let stat = catalog::static_dir(&ctx.ns, id);
    let out = catalog::output_dir(&ctx.ns, id);
    ensure_input(ctx, spec, &state, &stat)?;
    let cfg = build_cfg(spec, resume, ctx.chaos);
    match spec.algo {
        AlgoSpec::Halve => dispatch(
            ctx, id, spec, &Halve, &cfg, ctl, trace, telemetry, &state, &stat, &out,
        ),
        AlgoSpec::Sssp => dispatch(
            ctx, id, spec, &SsspIter, &cfg, ctl, trace, telemetry, &state, &stat, &out,
        ),
        AlgoSpec::PageRank => {
            let job = PageRankIter::new(spec.input.scale as u64);
            dispatch(
                ctx, id, spec, &job, &cfg, ctl, trace, telemetry, &state, &stat, &out,
            )
        }
        AlgoSpec::Kmeans => {
            let job = KmeansIter { combiner: false };
            dispatch(
                ctx, id, spec, &job, &cfg, ctl, trace, telemetry, &state, &stat, &out,
            )
        }
        AlgoSpec::PoisonPill => {
            if spec.engine != EngineSel::Threads {
                return Err(EngineError::Config(
                    "poison-pill jobs run on the thread engine only".into(),
                ));
            }
            // One real warm-up iteration into a scratch directory so
            // the job's trace ring holds a genuine trail, then a
            // deterministic failure — the dead-letter-queue test
            // vehicle. Warm-up hiccups on retries (its scratch output
            // already exists) are irrelevant to the verdict.
            let warm = IterConfig::new(spec.name.clone(), spec.tasks, 1);
            let scratch = format!("{out}-warmup");
            let _ = dispatch(
                ctx, id, spec, &Halve, &warm, ctl, trace, telemetry, &state, &stat, &scratch,
            );
            Err(EngineError::Worker("poison pill detonated".into()))
        }
    }
}

/// The extra worker argv (after the transport arguments) that makes
/// `imr-worker` resolve the same computation the coordinator runs.
pub fn worker_args(spec: &JobSpec) -> Vec<String> {
    match spec.algo {
        AlgoSpec::Halve | AlgoSpec::PoisonPill => vec!["halve".into()],
        AlgoSpec::Sssp => vec!["sssp".into()],
        AlgoSpec::PageRank => vec!["pagerank".into(), spec.input.scale.to_string()],
        AlgoSpec::Kmeans => vec!["kmeans".into(), "0".into()],
    }
}

fn build_cfg(spec: &JobSpec, resume: bool, chaos: Option<ChaosConfig>) -> IterConfig {
    let mut cfg = IterConfig::new(spec.name.clone(), spec.tasks, spec.max_iters)
        .with_checkpoint_interval(spec.checkpoint_interval)
        .with_net_policy(NetPolicy::from_env());
    if let Some(eps) = spec.distance_threshold {
        cfg = cfg.with_distance_threshold(eps);
    }
    if spec.algo == AlgoSpec::Kmeans {
        cfg = cfg.with_one2all();
    }
    if spec.engine == EngineSel::Tcp {
        cfg = cfg.with_tcp_transport();
        // Chaos needs an unscripted-stall watchdog: injected faults
        // are exactly the kind of degradation only it can recover.
        if let Some(chaos) = chaos.filter(|c| c.is_active()) {
            cfg = cfg.with_chaos(chaos);
            if cfg.watchdog.is_none() {
                cfg = cfg.with_watchdog(WatchdogConfig::default());
            }
        }
    }
    // The simulation engine restarts from scratch in virtual time;
    // durable resume is a native-backend capability.
    if resume && spec.checkpoint_interval > 0 && spec.engine != EngineSel::Sim {
        cfg = cfg.with_resume();
    }
    cfg
}

fn ensure_input(
    ctx: &ExecCtx,
    spec: &JobSpec,
    state_dir: &str,
    static_dir: &str,
) -> Result<(), EngineError> {
    if !ctx.dfs.list(state_dir).is_empty() {
        return Ok(());
    }
    let loader = NativeRunner::new(ctx.dfs.clone(), ctx.metrics.clone());
    let scale = spec.input.scale;
    let seed = spec.input.seed;
    match spec.algo {
        AlgoSpec::Halve | AlgoSpec::PoisonPill => {
            let mut clock = TaskClock::default();
            let data: Vec<(u32, f64)> = (0..scale as u32).map(|k| (k, 1024.0)).collect();
            let statics: Vec<(u32, ())> = (0..scale as u32).map(|k| (k, ())).collect();
            let job = Halve;
            load_partitioned(
                &ctx.dfs,
                state_dir,
                data,
                spec.tasks,
                |k, n| job.partition(k, n),
                &mut clock,
            )?;
            load_partitioned(
                &ctx.dfs,
                static_dir,
                statics,
                spec.tasks,
                |k, n| job.partition(k, n),
                &mut clock,
            )?;
        }
        AlgoSpec::Sssp => {
            let graph = generate_weighted_graph(
                scale,
                (scale * 4) as u64,
                sssp_degree_dist(),
                sssp_weight_dist(),
                seed,
            );
            load_sssp_imr(&loader, &graph, 0, spec.tasks, state_dir, static_dir)?;
        }
        AlgoSpec::PageRank => {
            let graph = generate_graph(scale, (scale * 4) as u64, pagerank_degree_dist(), seed);
            load_pagerank_imr(&loader, &graph, spec.tasks, state_dir, static_dir)?;
        }
        AlgoSpec::Kmeans => {
            let points = generate_points(scale, 2, KMEANS_K, seed);
            load_kmeans_imr(
                &loader, &points, KMEANS_K, spec.tasks, state_dir, static_dir,
            )?;
        }
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn dispatch<J: IterativeJob>(
    ctx: &ExecCtx,
    id: JobId,
    spec: &JobSpec,
    job: &J,
    cfg: &IterConfig,
    ctl: RunCtl,
    trace: TraceHandle,
    telemetry: TelemetryHandle,
    state_dir: &str,
    static_dir: &str,
    output_dir: &str,
) -> Result<ResultRecord, EngineError> {
    let outcome = match spec.engine {
        EngineSel::Sim => {
            let runner = IterativeRunner::new(
                Arc::clone(&ctx.cluster),
                ctx.dfs.clone(),
                ctx.metrics.clone(),
            )
            .with_telemetry(telemetry);
            runner.run_faults(job, cfg, state_dir, static_dir, output_dir, &[])?
        }
        EngineSel::Threads => {
            let runner = NativeRunner::new(ctx.dfs.clone(), ctx.metrics.clone())
                .with_trace(trace)
                .with_telemetry(telemetry)
                .with_ctl(ctl);
            runner.run_faults(job, cfg, state_dir, static_dir, output_dir, &[])?
        }
        EngineSel::Tcp => {
            let bin = ctx.worker_bin.clone().ok_or_else(|| {
                EngineError::Config("TCP-engine jobs need a configured worker binary".into())
            })?;
            let wspec = WorkerSpec::new(bin, worker_args(spec)).with_job(id);
            let runner = NativeRunner::new(ctx.dfs.clone(), ctx.metrics.clone())
                .with_trace(trace)
                .with_telemetry(telemetry)
                .with_ctl(ctl);
            runner.run_remote(job, &wspec, cfg, state_dir, static_dir, output_dir, &[])?
        }
    };
    Ok(ResultRecord {
        iterations: outcome.iterations as u64,
        distances: outcome.distances,
        state: encode_pairs(&outcome.final_state),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::InputSpec;

    #[test]
    fn result_records_round_trip() {
        let rec = ResultRecord {
            iterations: 6,
            distances: vec![f64::INFINITY, 3.5, 0.0],
            state: Bytes::from_static(b"\x01\x02\x03"),
        };
        let mut buf = rec.to_bytes();
        assert_eq!(ResultRecord::decode(&mut buf).unwrap(), rec);
    }

    #[test]
    fn worker_args_match_the_worker_catalog() {
        let mut spec = JobSpec::new("x", AlgoSpec::PageRank, EngineSel::Tcp, 3);
        spec.input = InputSpec { seed: 3, scale: 80 };
        assert_eq!(worker_args(&spec), vec!["pagerank", "80"]);
        spec.algo = AlgoSpec::Kmeans;
        assert_eq!(worker_args(&spec), vec!["kmeans", "0"]);
        spec.algo = AlgoSpec::Halve;
        assert_eq!(worker_args(&spec), vec!["halve"]);
    }

    #[test]
    fn resume_is_dropped_without_checkpoints_and_on_sim() {
        let spec = JobSpec::new("x", AlgoSpec::Halve, EngineSel::Threads, 1);
        assert!(build_cfg(&spec, true, None).resume);
        let no_ck = spec.clone().with_checkpoint_interval(0);
        assert!(!build_cfg(&no_ck, true, None).resume);
        let mut sim = spec;
        sim.engine = EngineSel::Sim;
        assert!(!build_cfg(&sim, true, None).resume);
    }

    #[test]
    fn chaos_reaches_tcp_configs_only_and_brings_a_watchdog() {
        let chaos = Some(ChaosConfig::seeded(7).with_drop_rate(0.05));
        let threads = JobSpec::new("x", AlgoSpec::Halve, EngineSel::Threads, 1);
        assert!(build_cfg(&threads, false, chaos).chaos.is_none());
        let mut tcp = threads;
        tcp.engine = EngineSel::Tcp;
        let cfg = build_cfg(&tcp, false, chaos);
        assert!(cfg.chaos.is_some());
        assert!(cfg.watchdog.is_some(), "chaos implies a watchdog");
        let inert = Some(ChaosConfig::seeded(7));
        assert!(build_cfg(&tcp, false, inert).chaos.is_none());
    }
}
