//! The durable job catalog: every job's spec, lifecycle metadata and
//! dead-letter record live in the DFS under a service namespace, so the
//! catalog — not the coordinator process — is the source of truth.
//!
//! Layout under a namespace root `ns`:
//!
//! ```text
//! {ns}/jobs/job-00007/spec        encoded JobSpec (immutable)
//! {ns}/jobs/job-00007/meta        encoded JobMeta (put_atomic on change)
//! {ns}/jobs/job-00007/in/state    generated initial state parts
//! {ns}/jobs/job-00007/in/static   generated static-data parts
//! {ns}/jobs/job-00007/out         output + checkpoint snapshots
//! {ns}/jobs/job-00007/result      encoded ResultRecord once Completed
//! {ns}/dlq/job-00007/entry        encoded DlqEntry once DeadLettered
//! {ns}/dlq/job-00007/flight       flight-recorder JSONL artifact
//! ```
//!
//! Giving every job its own subtree is what isolates tenants: no two
//! jobs share state, snapshot or output paths, so concurrent jobs (and
//! a resumed job's rollback scan) can never read each other's parts.

use bytes::{Bytes, BytesMut};
use imr_records::{Codec, CodecError, CodecResult};

/// Catalog-assigned job identity, dense from 1.
pub type JobId = u64;

/// Where a job is in its lifecycle. Journaled transitions:
/// `Queued → Running → {Completed, Queued (retry), DeadLettered}`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobPhase {
    /// Submitted (or requeued for retry/resume), awaiting slots.
    Queued,
    /// Holding task slots on the fleet. A recovered catalog treats
    /// `Running` as "interrupted mid-flight: resume from checkpoint".
    Running,
    /// Finished; its result record is journaled.
    Completed,
    /// Exhausted its retry budget; see the dead-letter entry.
    DeadLettered,
}

impl JobPhase {
    /// Stable display name for status tables.
    pub fn name(&self) -> &'static str {
        match self {
            JobPhase::Queued => "queued",
            JobPhase::Running => "running",
            JobPhase::Completed => "completed",
            JobPhase::DeadLettered => "dead-lettered",
        }
    }

    fn tag(&self) -> u8 {
        match self {
            JobPhase::Queued => 0,
            JobPhase::Running => 1,
            JobPhase::Completed => 2,
            JobPhase::DeadLettered => 3,
        }
    }

    fn from_tag(tag: u8) -> CodecResult<Self> {
        Ok(match tag {
            0 => JobPhase::Queued,
            1 => JobPhase::Running,
            2 => JobPhase::Completed,
            3 => JobPhase::DeadLettered,
            _ => return Err(CodecError::Corrupt("unknown phase tag")),
        })
    }
}

/// The mutable half of a catalog entry, rewritten (atomically) on every
/// lifecycle transition.
#[derive(Clone, Debug, PartialEq)]
pub struct JobMeta {
    /// The job this meta belongs to (sanity-checked on recovery).
    pub id: JobId,
    /// Current lifecycle phase.
    pub phase: JobPhase,
    /// Execution attempts so far (first run counts as attempt 1).
    pub attempts: u32,
    /// Last failure message, empty while the job is healthy.
    pub reason: String,
}

impl JobMeta {
    /// A freshly submitted job's meta.
    pub fn queued(id: JobId) -> Self {
        JobMeta {
            id,
            phase: JobPhase::Queued,
            attempts: 0,
            reason: String::new(),
        }
    }
}

impl Codec for JobMeta {
    fn encode(&self, buf: &mut BytesMut) {
        self.id.encode(buf);
        self.phase.tag().encode(buf);
        self.attempts.encode(buf);
        self.reason.encode(buf);
    }

    fn decode(buf: &mut Bytes) -> CodecResult<Self> {
        Ok(JobMeta {
            id: JobId::decode(buf)?,
            phase: JobPhase::from_tag(u8::decode(buf)?)?,
            attempts: u32::decode(buf)?,
            reason: String::decode(buf)?,
        })
    }

    fn encoded_len(&self) -> usize {
        self.id.encoded_len()
            + self.phase.tag().encoded_len()
            + self.attempts.encoded_len()
            + self.reason.encoded_len()
    }
}

/// A dead-letter record: why the job was given up on. The companion
/// `flight` artifact holds the job's trailing trace events.
#[derive(Clone, Debug, PartialEq)]
pub struct DlqEntry {
    /// The dead-lettered job.
    pub id: JobId,
    /// Attempts consumed before giving up.
    pub attempts: u32,
    /// The final attempt's failure message.
    pub reason: String,
}

impl Codec for DlqEntry {
    fn encode(&self, buf: &mut BytesMut) {
        self.id.encode(buf);
        self.attempts.encode(buf);
        self.reason.encode(buf);
    }

    fn decode(buf: &mut Bytes) -> CodecResult<Self> {
        Ok(DlqEntry {
            id: JobId::decode(buf)?,
            attempts: u32::decode(buf)?,
            reason: String::decode(buf)?,
        })
    }

    fn encoded_len(&self) -> usize {
        self.id.encoded_len() + self.attempts.encoded_len() + self.reason.encoded_len()
    }
}

fn job_dir(ns: &str, id: JobId) -> String {
    format!("{}/jobs/job-{id:05}", ns.trim_end_matches('/'))
}

/// DFS path of a job's immutable spec.
pub fn spec_path(ns: &str, id: JobId) -> String {
    format!("{}/spec", job_dir(ns, id))
}

/// DFS path of a job's mutable lifecycle meta.
pub fn meta_path(ns: &str, id: JobId) -> String {
    format!("{}/meta", job_dir(ns, id))
}

/// DFS directory of a job's generated initial state parts.
pub fn state_dir(ns: &str, id: JobId) -> String {
    format!("{}/in/state", job_dir(ns, id))
}

/// DFS directory of a job's generated static-data parts.
pub fn static_dir(ns: &str, id: JobId) -> String {
    format!("{}/in/static", job_dir(ns, id))
}

/// DFS directory a job's output parts and checkpoint snapshots land in.
pub fn output_dir(ns: &str, id: JobId) -> String {
    format!("{}/out", job_dir(ns, id))
}

/// DFS path of a completed job's encoded result record.
pub fn result_path(ns: &str, id: JobId) -> String {
    format!("{}/result", job_dir(ns, id))
}

/// DFS path of a dead-lettered job's entry record.
pub fn dlq_entry_path(ns: &str, id: JobId) -> String {
    format!("{}/dlq/job-{id:05}/entry", ns.trim_end_matches('/'))
}

/// DFS path of a dead-lettered job's flight-recorder artifact.
pub fn dlq_flight_path(ns: &str, id: JobId) -> String {
    format!("{}/dlq/job-{id:05}/flight", ns.trim_end_matches('/'))
}

/// Extracts the distinct job ids present under `{ns}/jobs/` from a DFS
/// listing — the recovery scan. Ids are returned sorted.
pub fn scan_job_ids(paths: &[String], ns: &str) -> Vec<JobId> {
    let prefix = format!("{}/jobs/job-", ns.trim_end_matches('/'));
    let mut ids: Vec<JobId> = paths
        .iter()
        .filter_map(|p| {
            let rest = p.strip_prefix(&prefix)?;
            let digits = rest.split('/').next()?;
            digits.parse::<JobId>().ok()
        })
        .collect();
    ids.sort_unstable();
    ids.dedup();
    ids
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_and_dlq_round_trip() {
        let meta = JobMeta {
            id: 12,
            phase: JobPhase::DeadLettered,
            attempts: 3,
            reason: "worker thread: boom".into(),
        };
        let mut buf = meta.to_bytes();
        assert_eq!(JobMeta::decode(&mut buf).unwrap(), meta);

        let entry = DlqEntry {
            id: 12,
            attempts: 3,
            reason: "worker thread: boom".into(),
        };
        let mut buf = entry.to_bytes();
        assert_eq!(DlqEntry::decode(&mut buf).unwrap(), entry);
    }

    #[test]
    fn paths_are_per_job_isolated() {
        assert_eq!(spec_path("/svc", 7), "/svc/jobs/job-00007/spec");
        assert_eq!(state_dir("/svc/", 7), "/svc/jobs/job-00007/in/state");
        assert_ne!(output_dir("/svc", 7), output_dir("/svc", 8));
        assert_eq!(dlq_flight_path("/svc", 1), "/svc/dlq/job-00001/flight");
    }

    #[test]
    fn scan_finds_each_id_once() {
        let paths = vec![
            "/svc/jobs/job-00001/spec".to_string(),
            "/svc/jobs/job-00001/meta".to_string(),
            "/svc/jobs/job-00003/in/state/part-00000".to_string(),
            "/svc/dlq/job-00002/entry".to_string(),
            "/svc/jobs/garbage".to_string(),
        ];
        assert_eq!(scan_job_ids(&paths, "/svc"), vec![1, 3]);
    }

    #[test]
    fn phase_tags_round_trip() {
        for phase in [
            JobPhase::Queued,
            JobPhase::Running,
            JobPhase::Completed,
            JobPhase::DeadLettered,
        ] {
            assert_eq!(JobPhase::from_tag(phase.tag()).unwrap(), phase);
        }
        assert!(JobPhase::from_tag(9).is_err());
    }
}
