//! The job service: one shared fleet of task slots, many tenants.
//!
//! [`JobService`] owns the catalog, the admission queue and the slot
//! ledger. [`JobService::run_until_idle`] is the fleet scheduler: it
//! admits queued jobs head-of-line whenever their slot footprint fits,
//! runs each attempt on its own thread (each job gets its own DFS
//! subtree, [`RunCtl`] and trace ring), and reacts to completions —
//! journaling results, requeueing failed attempts with the durable
//! resume flag, and dead-lettering jobs that exhaust their retry
//! budget, flight-recorder artifact attached.
//!
//! Every lifecycle transition is journaled to the DFS *before* the
//! service acts on it, so [`JobService::recover`] can rebuild the whole
//! machine from storage: `Completed`/`DeadLettered` jobs return as
//! catalog history, `Queued` jobs re-enter the queue, and `Running`
//! jobs — in flight when the coordinator died — are requeued with
//! resume set, restarting from their newest complete checkpoint
//! snapshot instead of iteration zero.

use crate::catalog::{self, DlqEntry, JobId, JobMeta, JobPhase};
use crate::exec::{self, ExecCtx, ResultRecord};
use crate::queue::AdmissionQueue;
use crate::spec::{AlgoSpec, EngineSel, JobSpec};
use bytes::Bytes;
use imapreduce::{ChaosConfig, EngineError, RunCtl};
use imr_dfs::Dfs;
use imr_records::Codec;
use imr_simcluster::{ClusterSpec, Metrics, MetricsHandle, NodeId, TaskClock};
use imr_telemetry::{
    Exposition, Gauge, JobStats, Provider, Telemetry, TelemetryHandle, TelemetryServer,
};
use imr_trace::{flight_lines, TraceBuffer, TraceEvent, TraceHandle};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;

/// Service-level configuration.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// DFS namespace root all catalog state lives under.
    pub ns: String,
    /// Task slots on the shared fleet; a job occupies `spec.tasks` of
    /// them while running.
    pub slots: usize,
    /// Nodes in the cluster the DFS (and simulation engine) models.
    pub nodes: usize,
    /// Worker binary for TCP-engine jobs.
    pub worker_bin: Option<PathBuf>,
    /// Capacity of each job's trace ring.
    pub trace_capacity: usize,
    /// Trailing trace events captured into a dead-lettered job's
    /// flight-recorder artifact.
    pub flight_tail: usize,
    /// Deterministic network-chaos schedule applied to every
    /// TCP-engine job the service runs (`None` = clean wire).
    pub chaos: Option<ChaosConfig>,
    /// Address the telemetry exposition endpoint binds to (`None` =
    /// no endpoint). Defaults from `IMR_TELEMETRY_ADDR`.
    pub telemetry_addr: Option<String>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            ns: "/svc".into(),
            slots: 4,
            nodes: 4,
            worker_bin: None,
            trace_capacity: 4096,
            flight_tail: 96,
            chaos: None,
            telemetry_addr: std::env::var("IMR_TELEMETRY_ADDR")
                .ok()
                .filter(|a| !a.is_empty()),
        }
    }
}

impl ServiceConfig {
    /// Sets the fleet's task-slot count.
    pub fn with_slots(mut self, slots: usize) -> Self {
        self.slots = slots;
        self
    }

    /// Sets the modeled cluster size.
    pub fn with_nodes(mut self, nodes: usize) -> Self {
        self.nodes = nodes;
        self
    }

    /// Sets the worker binary TCP-engine jobs are served by.
    pub fn with_worker_bin(mut self, bin: impl Into<PathBuf>) -> Self {
        self.worker_bin = Some(bin.into());
        self
    }

    /// Sets the DFS namespace root.
    pub fn with_ns(mut self, ns: impl Into<String>) -> Self {
        self.ns = ns.into();
        self
    }

    /// Applies a deterministic network-chaos schedule to every
    /// TCP-engine job the service runs.
    pub fn with_chaos(mut self, chaos: ChaosConfig) -> Self {
        self.chaos = Some(chaos);
        self
    }

    /// Binds the telemetry exposition endpoint to `addr`
    /// (e.g. `127.0.0.1:9464`; port 0 picks a free port).
    pub fn with_telemetry_addr(mut self, addr: impl Into<String>) -> Self {
        self.telemetry_addr = Some(addr.into());
        self
    }
}

/// One row of [`JobService::status`].
#[derive(Clone, Debug)]
pub struct JobStatus {
    /// Catalog id.
    pub id: JobId,
    /// Spec name.
    pub name: String,
    /// Algorithm name.
    pub algo: &'static str,
    /// Lifecycle phase.
    pub phase: JobPhase,
    /// Attempts consumed so far.
    pub attempts: u32,
    /// Admission priority.
    pub priority: u8,
    /// Last failure message (empty while healthy).
    pub reason: String,
}

struct JobEntry {
    spec: JobSpec,
    meta: JobMeta,
    trace: TraceHandle,
    telemetry: TelemetryHandle,
}

#[derive(Default)]
struct SvcState {
    catalog: BTreeMap<JobId, JobEntry>,
    queue: AdmissionQueue,
    running: HashMap<JobId, RunCtl>,
    slots_used: usize,
    next_id: JobId,
    completion_order: Vec<JobId>,
}

/// What the scheduler decided about one completed attempt, computed
/// under the state lock and journaled after releasing it.
enum Outcome {
    Completed(JobMeta, ResultRecord),
    Retry(JobMeta),
    Dead(JobMeta, Vec<TraceEvent>),
    Interrupted,
}

/// The multi-tenant job service. See the module docs.
pub struct JobService {
    dfs: Dfs,
    cluster: Arc<ClusterSpec>,
    metrics: MetricsHandle,
    cfg: ServiceConfig,
    state: Mutex<SvcState>,
    killed: AtomicBool,
    /// Per-job telemetry registries mirrored outside the state lock so
    /// the exposition server's provider can snapshot them without
    /// borrowing the service.
    tel_index: Arc<Mutex<Vec<(JobId, TelemetryHandle)>>>,
    /// The embedded exposition endpoint; stopped on drop. `None` when
    /// no address is configured or the bind failed (non-fatal).
    tel_server: Option<TelemetryServer>,
}

impl JobService {
    /// A fresh service over a new in-memory cluster + DFS.
    pub fn new(cfg: ServiceConfig) -> Self {
        let cluster = Arc::new(ClusterSpec::local(cfg.nodes));
        let metrics: MetricsHandle = Arc::new(Metrics::default());
        let dfs = Dfs::new(Arc::clone(&cluster), Arc::clone(&metrics), 2);
        Self::attach(dfs, cluster, metrics, cfg)
    }

    /// A service over existing infrastructure (empty catalog; use
    /// [`JobService::recover`] to rebuild one from a journaled
    /// namespace).
    pub fn attach(
        dfs: Dfs,
        cluster: Arc<ClusterSpec>,
        metrics: MetricsHandle,
        cfg: ServiceConfig,
    ) -> Self {
        let tel_index: Arc<Mutex<Vec<(JobId, TelemetryHandle)>>> = Arc::new(Mutex::new(Vec::new()));
        let tel_server = cfg.telemetry_addr.as_deref().and_then(|addr| {
            let index = Arc::clone(&tel_index);
            let provider: Provider = Arc::new(move || Exposition {
                jobs: index
                    .lock()
                    .iter()
                    .map(|(id, tel)| JobStats::from_telemetry(*id, tel))
                    .collect(),
            });
            TelemetryServer::start(addr, provider).ok()
        });
        JobService {
            dfs,
            cluster,
            metrics,
            cfg,
            state: Mutex::new(SvcState {
                next_id: 1,
                ..SvcState::default()
            }),
            killed: AtomicBool::new(false),
            tel_index,
            tel_server,
        }
    }

    /// Rebuilds a service from the journal under `cfg.ns`: finished
    /// jobs come back as history, queued jobs re-enter the queue, and
    /// jobs that were running when the previous coordinator died are
    /// requeued with durable resume set.
    pub fn recover(
        dfs: Dfs,
        cluster: Arc<ClusterSpec>,
        metrics: MetricsHandle,
        cfg: ServiceConfig,
    ) -> Result<Self, EngineError> {
        let svc = Self::attach(dfs, cluster, metrics, cfg);
        let listing = svc
            .dfs
            .list(&format!("{}/jobs/", svc.cfg.ns.trim_end_matches('/')));
        let ids = catalog::scan_job_ids(&listing, &svc.cfg.ns);
        let mut requeued = Vec::new();
        {
            let mut st = svc.state.lock();
            for id in ids {
                let spec = svc.read_decoded::<JobSpec>(&catalog::spec_path(&svc.cfg.ns, id))?;
                let mut meta = svc.read_decoded::<JobMeta>(&catalog::meta_path(&svc.cfg.ns, id))?;
                if meta.id != id {
                    return Err(EngineError::Config(format!(
                        "catalog corrupt: meta for job {id} names job {}",
                        meta.id
                    )));
                }
                if matches!(meta.phase, JobPhase::Queued | JobPhase::Running) {
                    meta.phase = JobPhase::Queued;
                    st.queue.push(id, spec.priority, spec.tasks, true);
                    requeued.push(meta.clone());
                }
                st.next_id = st.next_id.max(id + 1);
                let telemetry: TelemetryHandle = Arc::new(Telemetry::default());
                svc.tel_index.lock().push((id, Arc::clone(&telemetry)));
                st.catalog.insert(
                    id,
                    JobEntry {
                        spec,
                        meta,
                        trace: Arc::new(TraceBuffer::with_capacity(svc.cfg.trace_capacity)),
                        telemetry,
                    },
                );
            }
        }
        for meta in requeued {
            svc.journal_meta(&meta)?;
        }
        Ok(svc)
    }

    /// The service's DFS (shared with every engine it runs).
    pub fn dfs(&self) -> &Dfs {
        &self.dfs
    }

    /// The modeled cluster.
    pub fn cluster(&self) -> &Arc<ClusterSpec> {
        &self.cluster
    }

    /// The shared metrics registry.
    pub fn metrics(&self) -> &MetricsHandle {
        &self.metrics
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// Validates and enqueues a job: journals its spec and `Queued`
    /// meta, then admits it to the queue. Returns the catalog id.
    pub fn submit(&self, spec: JobSpec) -> Result<JobId, EngineError> {
        if spec.tasks == 0 {
            return Err(EngineError::Config("a job needs at least one task".into()));
        }
        if spec.tasks > self.cfg.slots {
            return Err(EngineError::Config(format!(
                "job wants {} task slots but the fleet has {}",
                spec.tasks, self.cfg.slots
            )));
        }
        if spec.algo == AlgoSpec::PoisonPill && spec.engine != EngineSel::Threads {
            return Err(EngineError::Config(
                "poison-pill jobs run on the thread engine only".into(),
            ));
        }
        if spec.engine == EngineSel::Tcp && self.cfg.worker_bin.is_none() {
            return Err(EngineError::Config(
                "TCP-engine jobs need a configured worker binary".into(),
            ));
        }
        let (id, meta) = {
            let mut st = self.state.lock();
            let id = st.next_id;
            st.next_id += 1;
            let meta = JobMeta::queued(id);
            let telemetry: TelemetryHandle = Arc::new(Telemetry::default());
            self.tel_index.lock().push((id, Arc::clone(&telemetry)));
            st.catalog.insert(
                id,
                JobEntry {
                    spec: spec.clone(),
                    meta: meta.clone(),
                    trace: Arc::new(TraceBuffer::with_capacity(self.cfg.trace_capacity)),
                    telemetry,
                },
            );
            st.queue.push(id, spec.priority, spec.tasks, false);
            (id, meta)
        };
        let mut clock = TaskClock::default();
        self.dfs.put_atomic(
            &catalog::spec_path(&self.cfg.ns, id),
            spec.to_bytes(),
            NodeId(0),
            &mut clock,
        )?;
        self.journal_meta(&meta)?;
        Ok(id)
    }

    /// The fleet scheduler. Admits and runs queued jobs until the
    /// queue drains and every running job has reported — or, after
    /// [`JobService::kill`], until the in-flight jobs have aborted.
    /// Call again after submitting more jobs; the service is reusable.
    pub fn run_until_idle(&self) -> Result<(), EngineError> {
        let (tx, rx) = mpsc::channel();
        let mut handles = Vec::new();
        loop {
            let launches = self.admit();
            for (adm_id, resume, meta, spec, trace, telemetry, ctl) in launches {
                self.journal_meta(&meta)?;
                let ctx = self.exec_ctx();
                let tx = tx.clone();
                handles.push(thread::spawn(move || {
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        exec::run_job(&ctx, adm_id, &spec, resume, ctl, trace, telemetry)
                    }))
                    .unwrap_or_else(|_| Err(EngineError::Worker("job attempt panicked".into())));
                    let _ = tx.send((adm_id, result));
                }));
            }
            {
                let st = self.state.lock();
                let drained = st.queue.is_empty() || self.killed.load(Ordering::Acquire);
                if st.running.is_empty() && drained {
                    break;
                }
            }
            let (id, result) = rx.recv().expect("running jobs always report");
            self.on_complete(id, result)?;
        }
        for handle in handles {
            let _ = handle.join();
        }
        Ok(())
    }

    /// Coordinator shutdown: stop admitting and abort every in-flight
    /// run at its next cancellation point. Journaled state is left
    /// exactly as a crash would: interrupted jobs stay `Running`, which
    /// is what tells [`JobService::recover`] to resume them.
    pub fn kill(&self) {
        self.killed.store(true, Ordering::Release);
        let st = self.state.lock();
        for ctl in st.running.values() {
            ctl.abort();
        }
    }

    /// Whether [`JobService::kill`] has been called.
    pub fn is_killed(&self) -> bool {
        self.killed.load(Ordering::Acquire)
    }

    /// Catalog snapshot, id-ordered.
    pub fn status(&self) -> Vec<JobStatus> {
        let st = self.state.lock();
        st.catalog
            .iter()
            .map(|(&id, e)| JobStatus {
                id,
                name: e.spec.name.clone(),
                algo: e.spec.algo.name(),
                phase: e.meta.phase,
                attempts: e.meta.attempts,
                priority: e.spec.priority,
                reason: e.meta.reason.clone(),
            })
            .collect()
    }

    /// A completed job's journaled result, if present.
    pub fn result(&self, id: JobId) -> Result<Option<ResultRecord>, EngineError> {
        let path = catalog::result_path(&self.cfg.ns, id);
        if !self.dfs.exists(&path) {
            return Ok(None);
        }
        Ok(Some(self.read_decoded::<ResultRecord>(&path)?))
    }

    /// Dead-letter entries journaled under the namespace, id-ordered.
    /// Reads the DFS, so it sees dead letters from previous
    /// incarnations of the coordinator too.
    pub fn dlq(&self) -> Result<Vec<DlqEntry>, EngineError> {
        let prefix = format!("{}/dlq/", self.cfg.ns.trim_end_matches('/'));
        let mut entries = Vec::new();
        for path in self.dfs.list(&prefix) {
            if path.ends_with("/entry") {
                entries.push(self.read_decoded::<DlqEntry>(&path)?);
            }
        }
        entries.sort_by_key(|e| e.id);
        Ok(entries)
    }

    /// A dead-lettered job's flight-recorder artifact (JSONL), if any.
    pub fn dlq_flight(&self, id: JobId) -> Result<Option<String>, EngineError> {
        let path = catalog::dlq_flight_path(&self.cfg.ns, id);
        if !self.dfs.exists(&path) {
            return Ok(None);
        }
        let mut clock = TaskClock::default();
        let raw = self.dfs.read(&path, NodeId(0), &mut clock)?;
        Ok(Some(String::from_utf8_lossy(&raw).into_owned()))
    }

    /// Ids of completed jobs in the order they finished (this
    /// incarnation only — recovery starts a fresh ledger).
    pub fn completion_order(&self) -> Vec<JobId> {
        self.state.lock().completion_order.clone()
    }

    /// Every job's trace stream, for
    /// [`chrome_trace_json_jobs`](imr_trace::chrome_trace_json_jobs).
    pub fn job_traces(&self) -> Vec<(u64, Vec<TraceEvent>)> {
        let st = self.state.lock();
        st.catalog
            .iter()
            .map(|(&id, e)| (id, e.trace.snapshot()))
            .collect()
    }

    /// Every job's telemetry registry, id-ordered.
    pub fn job_telemetry(&self) -> Vec<(u64, TelemetryHandle)> {
        let st = self.state.lock();
        st.catalog
            .iter()
            .map(|(&id, e)| (id, Arc::clone(&e.telemetry)))
            .collect()
    }

    /// Where the embedded telemetry endpoint actually bound, if it is
    /// serving (resolves port 0 to the picked port).
    pub fn telemetry_addr(&self) -> Option<std::net::SocketAddr> {
        self.tel_server.as_ref().map(|s| s.addr())
    }

    fn exec_ctx(&self) -> ExecCtx {
        ExecCtx {
            dfs: self.dfs.clone(),
            cluster: Arc::clone(&self.cluster),
            metrics: Arc::clone(&self.metrics),
            ns: self.cfg.ns.clone(),
            worker_bin: self.cfg.worker_bin.clone(),
            chaos: self.cfg.chaos,
        }
    }

    /// Pops every admissible queued job, marks it running and reserves
    /// its slots — all under one lock hold, so admission is atomic with
    /// respect to [`JobService::kill`].
    #[allow(clippy::type_complexity)]
    fn admit(
        &self,
    ) -> Vec<(
        JobId,
        bool,
        JobMeta,
        JobSpec,
        TraceHandle,
        TelemetryHandle,
        RunCtl,
    )> {
        let mut st = self.state.lock();
        let mut launches = Vec::new();
        if self.killed.load(Ordering::Acquire) {
            return launches;
        }
        loop {
            let free = self.cfg.slots - st.slots_used;
            let Some(adm) = st.queue.pop_admissible(free) else {
                break;
            };
            st.slots_used += adm.tasks;
            let ctl = RunCtl::new();
            st.running.insert(adm.id, ctl.clone());
            let entry = st.catalog.get_mut(&adm.id).expect("queued job in catalog");
            entry.meta.phase = JobPhase::Running;
            launches.push((
                adm.id,
                adm.resume,
                entry.meta.clone(),
                entry.spec.clone(),
                Arc::clone(&entry.trace),
                Arc::clone(&entry.telemetry),
                ctl,
            ));
        }
        Self::publish_gauges(&st);
        launches
    }

    /// Mirrors the service-level admission gauges into every job's
    /// telemetry registry, so samples taken by any running engine carry
    /// the fleet's queue depth and slot occupancy at that instant.
    fn publish_gauges(st: &SvcState) {
        let queued = st.queue.len() as u64;
        let inflight = st.slots_used as u64;
        for entry in st.catalog.values() {
            entry.telemetry.set_gauge(Gauge::QueueLen, queued);
            entry.telemetry.set_gauge(Gauge::InflightSlots, inflight);
        }
    }

    fn on_complete(
        &self,
        id: JobId,
        result: Result<ResultRecord, EngineError>,
    ) -> Result<(), EngineError> {
        let killed = self.killed.load(Ordering::Acquire);
        let outcome = {
            let mut st = self.state.lock();
            st.running.remove(&id);
            let tasks = st
                .catalog
                .get(&id)
                .expect("completed job in catalog")
                .spec
                .tasks;
            st.slots_used -= tasks;
            let entry = st.catalog.get_mut(&id).expect("completed job in catalog");
            match result {
                Ok(rec) => {
                    entry.meta.attempts += 1;
                    entry.meta.phase = JobPhase::Completed;
                    entry.meta.reason.clear();
                    let meta = entry.meta.clone();
                    st.completion_order.push(id);
                    Outcome::Completed(meta, rec)
                }
                // An abort during shutdown is not a failure: the
                // journaled phase stays `Running` so recovery resumes
                // the job from its checkpoints.
                Err(_) if killed => Outcome::Interrupted,
                Err(e) => {
                    entry.meta.attempts += 1;
                    entry.meta.reason = e.to_string();
                    if entry.meta.attempts > entry.spec.fault.max_retries {
                        entry.meta.phase = JobPhase::DeadLettered;
                        let tail = entry.trace.tail(self.cfg.flight_tail);
                        Outcome::Dead(entry.meta.clone(), tail)
                    } else {
                        entry.meta.phase = JobPhase::Queued;
                        let (priority, tasks) = (entry.spec.priority, entry.spec.tasks);
                        let meta = entry.meta.clone();
                        st.queue.push(id, priority, tasks, true);
                        Outcome::Retry(meta)
                    }
                }
            }
        };
        {
            let st = self.state.lock();
            Self::publish_gauges(&st);
        }
        match outcome {
            Outcome::Completed(meta, rec) => {
                let mut clock = TaskClock::default();
                self.dfs.put_atomic(
                    &catalog::result_path(&self.cfg.ns, id),
                    rec.to_bytes(),
                    NodeId(0),
                    &mut clock,
                )?;
                self.journal_meta(&meta)
            }
            Outcome::Retry(meta) => self.journal_meta(&meta),
            Outcome::Dead(meta, tail) => {
                self.journal_meta(&meta)?;
                let entry = DlqEntry {
                    id,
                    attempts: meta.attempts,
                    reason: meta.reason.clone(),
                };
                let mut clock = TaskClock::default();
                self.dfs.put_atomic(
                    &catalog::dlq_entry_path(&self.cfg.ns, id),
                    entry.to_bytes(),
                    NodeId(0),
                    &mut clock,
                )?;
                // The supervisor dumps flight artifacts on rollbacks;
                // a retry-exhausted job never got that far, so the
                // service captures the trailing window itself.
                self.dfs.put_atomic(
                    &catalog::dlq_flight_path(&self.cfg.ns, id),
                    Bytes::from(flight_lines(&tail).into_bytes()),
                    NodeId(0),
                    &mut clock,
                )?;
                Ok(())
            }
            Outcome::Interrupted => Ok(()),
        }
    }

    fn journal_meta(&self, meta: &JobMeta) -> Result<(), EngineError> {
        let mut clock = TaskClock::default();
        self.dfs.put_atomic(
            &catalog::meta_path(&self.cfg.ns, meta.id),
            meta.to_bytes(),
            NodeId(0),
            &mut clock,
        )?;
        Ok(())
    }

    fn read_decoded<T: Codec>(&self, path: &str) -> Result<T, EngineError> {
        let mut clock = TaskClock::default();
        let mut raw = self.dfs.read(path, NodeId(0), &mut clock)?;
        Ok(T::decode(&mut raw)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn svc(slots: usize) -> JobService {
        JobService::new(ServiceConfig::default().with_slots(slots))
    }

    #[test]
    fn submit_rejects_impossible_specs() {
        let s = svc(2);
        let wide = JobSpec::new("wide", AlgoSpec::Halve, EngineSel::Threads, 1).with_tasks(3);
        assert!(s.submit(wide).is_err());
        let poison_sim = JobSpec::new("p", AlgoSpec::PoisonPill, EngineSel::Sim, 1);
        assert!(s.submit(poison_sim).is_err());
        let tcp = JobSpec::new("t", AlgoSpec::Halve, EngineSel::Tcp, 1);
        assert!(s.submit(tcp).is_err(), "no worker binary configured");
    }

    #[test]
    fn sim_job_runs_to_completion_and_journals_a_result() {
        let s = svc(4);
        let id = s
            .submit(
                JobSpec::new("halve-sim", AlgoSpec::Halve, EngineSel::Sim, 7)
                    .with_scale(16)
                    .with_max_iters(3),
            )
            .unwrap();
        s.run_until_idle().unwrap();
        let status = s.status();
        assert_eq!(status.len(), 1);
        assert_eq!(status[0].phase, JobPhase::Completed);
        assert_eq!(status[0].attempts, 1);
        let rec = s.result(id).unwrap().expect("result journaled");
        assert_eq!(rec.iterations, 3);
        assert!(!rec.state.is_empty());
        assert!(s.dlq().unwrap().is_empty());
    }

    #[test]
    fn poison_job_exhausts_retries_and_lands_in_the_dlq() {
        let s = svc(4);
        let id = s
            .submit(
                JobSpec::new("poison", AlgoSpec::PoisonPill, EngineSel::Threads, 3)
                    .with_scale(8)
                    .with_max_retries(1),
            )
            .unwrap();
        s.run_until_idle().unwrap();
        let status = s.status();
        assert_eq!(status[0].phase, JobPhase::DeadLettered);
        assert_eq!(status[0].attempts, 2, "initial attempt + one retry");
        assert!(!status[0].reason.is_empty());
        let dlq = s.dlq().unwrap();
        assert_eq!(dlq.len(), 1);
        assert_eq!(dlq[0].id, id);
        assert_eq!(dlq[0].attempts, 2);
        assert!(
            s.dlq_flight(id).unwrap().is_some(),
            "flight artifact attached"
        );
        assert!(s.result(id).unwrap().is_none());
    }

    #[test]
    fn telemetry_endpoint_serves_prometheus_text_for_finished_jobs() {
        use std::io::{Read, Write};
        let s = JobService::new(
            ServiceConfig::default()
                .with_slots(4)
                .with_telemetry_addr("127.0.0.1:0"),
        );
        s.submit(
            JobSpec::new("halve-tel", AlgoSpec::Halve, EngineSel::Threads, 5)
                .with_scale(8)
                .with_max_iters(3)
                .with_tasks(2),
        )
        .unwrap();
        s.run_until_idle().unwrap();
        let addr = s.telemetry_addr().expect("endpoint bound");
        let mut conn = std::net::TcpStream::connect(addr).unwrap();
        conn.write_all(b"GET /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut body = String::new();
        conn.read_to_string(&mut body).unwrap();
        assert!(body.starts_with("HTTP/1.1 200"), "got: {body}");
        assert!(body.contains("imr_iteration{job=\"1\"} 3"));
        assert!(body.contains("imr_phase_latency_nanos_count{job=\"1\",phase=\"map\"} 6"));
        assert!(body.contains("imr_inflight_slots{job=\"1\"} 0"));
        let tel = s.job_telemetry();
        assert_eq!(tel.len(), 1);
        assert_eq!(tel[0].1.samples().len(), 6, "2 pairs x 3 iterations");
    }

    #[test]
    fn mixed_batch_respects_slots_and_completes_everything() {
        let s = svc(2);
        let mut ids = Vec::new();
        for seed in 0..5u64 {
            ids.push(
                s.submit(
                    JobSpec::new(
                        format!("h{seed}"),
                        AlgoSpec::Halve,
                        EngineSel::Threads,
                        seed,
                    )
                    .with_scale(12)
                    .with_max_iters(3)
                    .with_tasks(2),
                )
                .unwrap(),
            );
        }
        s.run_until_idle().unwrap();
        for id in ids {
            let rec = s.result(id).unwrap().expect("each job completed");
            assert_eq!(rec.iterations, 3);
        }
    }
}
