//! Virtual-time slot scheduling: the JobTracker's task assignment.
//!
//! Hadoop exposes a fixed number of map/reduce slots per TaskTracker
//! (default two of each) and assigns tasks to free slots, preferring
//! nodes that hold a replica of the task's input split. The list
//! scheduler here reproduces that in virtual time: each slot tracks the
//! instant it becomes free, and a task is placed on the slot giving the
//! earliest start, with locality as the tie-breaker.

use imr_simcluster::{ClusterSpec, NodeId, VInstant};

/// One pool of slots (map or reduce) across the cluster.
#[derive(Debug, Clone)]
pub struct SlotPool {
    /// `free[n]` holds the free-instants of node `n`'s slots.
    free: Vec<Vec<VInstant>>,
}

impl SlotPool {
    /// Builds the pool from the cluster spec. `map` selects map slots
    /// (true) or reduce slots (false).
    pub fn new(spec: &ClusterSpec, map: bool, at: VInstant) -> Self {
        let free = spec
            .nodes
            .iter()
            .map(|n| vec![at; if map { n.map_slots } else { n.reduce_slots }])
            .collect();
        SlotPool { free }
    }

    /// Chooses the placement for a task that becomes ready at `ready`,
    /// preferring `preferred` nodes (input-split replicas). Returns the
    /// chosen node and the start instant. Does **not** occupy the slot;
    /// call [`occupy`](Self::occupy) once the finish time is known.
    pub fn place(&self, ready: VInstant, preferred: &[NodeId]) -> (NodeId, VInstant) {
        let mut best: Option<(VInstant, bool, NodeId)> = None;
        for (n, slots) in self.free.iter().enumerate() {
            let Some(&slot_free) = slots.iter().min() else {
                continue;
            };
            let node = NodeId(n as u32);
            let start = slot_free.max(ready);
            let local = preferred.contains(&node);
            let better = match &best {
                None => true,
                Some((bs, bl, bn)) => {
                    // Earlier start wins; ties prefer locality, then
                    // lower node id for determinism.
                    (start, !local, node.0) < (*bs, !*bl, bn.0)
                }
            };
            if better {
                best = Some((start, local, node));
            }
        }
        let (start, _, node) = best.expect("cluster has no slots");
        (node, start)
    }

    /// As [`place`](Self::place) but never chooses `exclude` — used for
    /// speculative duplicate attempts, which must run on a different
    /// worker than the primary.
    pub fn place_excluding(&self, ready: VInstant, exclude: NodeId) -> Option<(NodeId, VInstant)> {
        let mut best: Option<(VInstant, NodeId)> = None;
        for (n, slots) in self.free.iter().enumerate() {
            let node = NodeId(n as u32);
            if node == exclude {
                continue;
            }
            let Some(&slot_free) = slots.iter().min() else {
                continue;
            };
            let start = slot_free.max(ready);
            let better = match &best {
                None => true,
                Some((bs, bn)) => (start, node.0) < (*bs, bn.0),
            };
            if better {
                best = Some((start, node));
            }
        }
        best.map(|(start, node)| (node, start))
    }

    /// Marks the earliest-free slot of `node` busy until `until`.
    pub fn occupy(&mut self, node: NodeId, until: VInstant) {
        let slots = &mut self.free[node.index()];
        let slot = slots
            .iter_mut()
            .min()
            .expect("occupying a node with no slots");
        *slot = until;
    }

    /// Earliest instant any slot in the pool is free.
    pub fn earliest_free(&self) -> VInstant {
        self.free
            .iter()
            .flatten()
            .copied()
            .min()
            .expect("empty slot pool")
    }

    /// Removes `node`'s slots (node failure / task migration source).
    pub fn drain_node(&mut self, node: NodeId) {
        self.free[node.index()].clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imr_simcluster::VDuration;

    fn at(s: u64) -> VInstant {
        VInstant::EPOCH + VDuration::from_secs(s)
    }

    #[test]
    fn placement_prefers_locality_on_ties() {
        let spec = ClusterSpec::local(3);
        let pool = SlotPool::new(&spec, true, VInstant::EPOCH);
        let (node, start) = pool.place(VInstant::EPOCH, &[NodeId(2)]);
        assert_eq!(node, NodeId(2));
        assert_eq!(start, VInstant::EPOCH);
    }

    #[test]
    fn placement_prefers_earlier_start_over_locality() {
        let spec = ClusterSpec::local(2);
        let mut pool = SlotPool::new(&spec, true, VInstant::EPOCH);
        // Fill both of node 0's slots until t=100.
        pool.occupy(NodeId(0), at(100));
        pool.occupy(NodeId(0), at(100));
        let (node, start) = pool.place(VInstant::EPOCH, &[NodeId(0)]);
        assert_eq!(node, NodeId(1), "waiting 100s for locality is wrong");
        assert_eq!(start, VInstant::EPOCH);
    }

    #[test]
    fn slots_serialize_task_waves() {
        let spec = ClusterSpec::local(1); // one node, two map slots
        let mut pool = SlotPool::new(&spec, true, VInstant::EPOCH);
        // Three equal tasks of 10s: two run immediately, third waits.
        for expected_start in [0u64, 0, 10] {
            let (node, start) = pool.place(VInstant::EPOCH, &[]);
            assert_eq!(start, at(expected_start));
            pool.occupy(node, start + VDuration::from_secs(10));
        }
    }

    #[test]
    fn ready_time_lower_bounds_start() {
        let spec = ClusterSpec::local(2);
        let pool = SlotPool::new(&spec, false, VInstant::EPOCH);
        let (_, start) = pool.place(at(42), &[]);
        assert_eq!(start, at(42));
    }

    #[test]
    fn drained_node_is_never_chosen() {
        let spec = ClusterSpec::local(2);
        let mut pool = SlotPool::new(&spec, true, VInstant::EPOCH);
        pool.drain_node(NodeId(0));
        for _ in 0..5 {
            let (node, start) = pool.place(VInstant::EPOCH, &[NodeId(0)]);
            assert_eq!(node, NodeId(1));
            pool.occupy(node, start + VDuration::from_secs(1));
        }
    }

    #[test]
    fn place_excluding_skips_the_primary() {
        let spec = ClusterSpec::local(2);
        let pool = SlotPool::new(&spec, true, VInstant::EPOCH);
        let (node, _) = pool.place_excluding(VInstant::EPOCH, NodeId(0)).unwrap();
        assert_eq!(node, NodeId(1));
        let single = SlotPool::new(&ClusterSpec::local(1), true, VInstant::EPOCH);
        assert!(single.place_excluding(VInstant::EPOCH, NodeId(0)).is_none());
    }

    #[test]
    fn earliest_free_tracks_occupancy() {
        let spec = ClusterSpec::local(1);
        let mut pool = SlotPool::new(&spec, true, VInstant::EPOCH);
        assert_eq!(pool.earliest_free(), VInstant::EPOCH);
        pool.occupy(NodeId(0), at(5));
        pool.occupy(NodeId(0), at(9));
        assert_eq!(pool.earliest_free(), at(5));
    }
}
