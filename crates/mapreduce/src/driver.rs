//! The iterative driver program (paper §1, §2.2).
//!
//! This is exactly what a Hadoop user writes around an iterative
//! algorithm: a client-side loop that submits one MapReduce job per
//! iteration, feeds each job the previous job's DFS output, and — when
//! a distance-based stop rule is wanted — submits an *additional*
//! termination-check MapReduce job after every iteration. All three
//! limitations the paper lists (repeated job init, static data
//! reshuffling, full-job barriers) are inherent to this loop, which is
//! what makes it the baseline the figures compare against.

use crate::io::{delete_dir, num_parts, part_path, read_all, read_part};
use crate::job::{JobConfig, MrJob};
use crate::runner::{EngineError, JobResult, JobRunner};
use imr_records::sort_run;
use imr_simcluster::{NodeId, RunReport, TaskClock, VInstant};

/// Distance-based termination: a user metric over each key's previous
/// and current value, summed over all keys (the paper's `distance()`
/// API), with a stop threshold.
pub struct CheckSpec<K, V> {
    /// Per-key distance contribution.
    pub distance: Box<dyn Fn(&K, &V, &V) -> f64 + Send + Sync>,
    /// Stop when the summed distance falls below this.
    pub threshold: f64,
}

impl<K, V> CheckSpec<K, V> {
    /// Builds a check from a per-key distance function and threshold.
    pub fn new(
        distance: impl Fn(&K, &V, &V) -> f64 + Send + Sync + 'static,
        threshold: f64,
    ) -> Self {
        CheckSpec {
            distance: Box::new(distance),
            threshold,
        }
    }
}

/// The outcome of an iterative run.
#[derive(Debug, Clone)]
pub struct IterativeOutcome {
    /// Per-iteration completion timeline and metrics.
    pub report: RunReport,
    /// DFS directory holding the final iteration's output.
    pub final_dir: String,
    /// Number of map-reduce iterations executed.
    pub iterations: usize,
    /// Distance measured after each iteration (empty without a check).
    pub distances: Vec<f64>,
}

/// Runs `job` iteratively: output of iteration *k* is the input of
/// iteration *k+1*.
///
/// * `init_dir` — DFS directory with the initial data (state joined
///   with static, as Hadoop implementations bundle them);
/// * `work_dir` — scratch directory for per-iteration outputs;
/// * `max_iters` — hard iteration cap;
/// * `check` — optional distance-based stop rule, executed as a
///   separate MapReduce job per iteration, exactly as the paper
///   describes Hadoop users must.
pub fn run_iterative<J>(
    runner: &JobRunner,
    job: &J,
    conf: &JobConfig,
    init_dir: &str,
    work_dir: &str,
    max_iters: usize,
    check: Option<&CheckSpec<J::OutK, J::OutV>>,
) -> Result<IterativeOutcome, EngineError>
where
    J: MrJob<InK = <J as MrJob>::OutK, InV = <J as MrJob>::OutV>,
{
    assert!(max_iters > 0, "need at least one iteration");
    let mut report = RunReport {
        label: if runner.charge_init {
            "MapReduce".into()
        } else {
            "MapReduce (ex. init.)".into()
        },
        ..RunReport::default()
    };
    let mut distances = Vec::new();
    let mut now = VInstant::EPOCH;
    let mut input_dir = init_dir.to_owned();
    let mut iterations = 0;

    for iter in 1..=max_iters {
        let out_dir = format!("{}/iter-{:04}", work_dir.trim_end_matches('/'), iter);
        let res: JobResult = runner.run(job, conf, &input_dir, &out_dir, now)?;
        now = res.finished;
        report.iteration_done.push(now);
        iterations = iter;

        let mut stop = false;
        if let Some(check) = check {
            let (t, dist) = run_check_job(runner, &input_dir, &out_dir, now, check)?;
            now = t;
            distances.push(dist);
            stop = dist < check.threshold;
        }

        // Free the grandparent iteration's data; the parent is still
        // needed as the next check's "previous" snapshot.
        if iter >= 2 {
            let old = format!("{}/iter-{:04}", work_dir.trim_end_matches('/'), iter - 1);
            if old != input_dir {
                delete_dir(runner.dfs(), &old);
            }
        }
        if iter >= 2 && input_dir != *init_dir {
            delete_dir(runner.dfs(), &input_dir);
        }
        input_dir = out_dir;
        if stop {
            break;
        }
    }

    report.finished = now;
    report.metrics = runner.metrics().snapshot();
    Ok(IterativeOutcome {
        report,
        final_dir: input_dir,
        iterations,
        distances,
    })
}

/// The per-iteration termination-check MapReduce job.
///
/// Map tasks read the previous and current outputs part-by-part and
/// emit one partial distance each; a single reduce task sums them. The
/// job pays the full Hadoop job overhead (setup + task launches), which
/// is precisely the overhead iMapReduce's built-in termination check
/// avoids.
fn run_check_job<K, V>(
    runner: &JobRunner,
    prev_dir: &str,
    cur_dir: &str,
    submit: VInstant,
    check: &CheckSpec<K, V>,
) -> Result<(VInstant, f64), EngineError>
where
    K: imr_records::Key,
    V: imr_records::Value,
{
    let cost = &runner.cluster().cost;
    let dfs = runner.dfs();
    runner.metrics().jobs_launched.add(1);
    let job_start = if runner.charge_init {
        submit + cost.job_setup
    } else {
        submit
    };

    let parts = num_parts(dfs, cur_dir);
    let mut pool = crate::schedule::SlotPool::new(runner.cluster(), true, job_start);
    let mut done = Vec::with_capacity(parts);
    let mut partials = Vec::with_capacity(parts);

    // The previous output is decoded once for key lookup; per-part map
    // tasks are charged for reading both snapshots.
    let mut scratch = TaskClock::starting_at(job_start);
    let mut prev_all: Vec<(K, V)> = read_all(dfs, prev_dir, NodeId(0), &mut scratch)?;
    sort_run(&mut prev_all);

    for i in 0..parts {
        let (node, start) = pool.place(job_start, &[]);
        let speed = runner.cluster().speed(node);
        let mut clock = TaskClock::starting_at(start);
        if runner.charge_init {
            clock.advance(cost.task_launch);
        }
        runner.metrics().tasks_launched.add(1);

        let cur: Vec<(K, V)> = read_part(dfs, cur_dir, i, node, &mut clock)?;
        // The map must also fetch the matching slice of the previous
        // snapshot; charge a proportional read.
        let prev_bytes = dfs.len(&part_path(cur_dir, i)).unwrap_or(0);
        clock.advance(cost.disk_time(prev_bytes));

        let mut local = 0.0;
        for (k, v) in &cur {
            if let Ok(idx) = prev_all.binary_search_by(|(pk, _)| pk.cmp(k)) {
                local += (check.distance)(k, &prev_all[idx].1, v);
            }
        }
        clock.advance(cost.compute_time(cur.len() as u64, prev_bytes, speed));
        // Ship one float to the single reducer.
        let arrival = clock.now() + cost.remote_transfer_time(16);
        pool.occupy(node, clock.now());
        done.push(arrival);
        partials.push(local);
    }

    // Single reducer barrier + trivial sum + tiny DFS write.
    let mut reduce = TaskClock::starting_at(job_start);
    if runner.charge_init {
        reduce.advance(cost.task_launch);
    }
    runner.metrics().tasks_launched.add(1);
    reduce.barrier(done);
    reduce.advance(cost.compute_time(parts as u64, 0, 1.0));
    reduce.advance(cost.disk_time(16));
    Ok((reduce.now(), partials.iter().sum()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Emitter;
    use imr_dfs::Dfs;
    use imr_simcluster::{ClusterSpec, Metrics, MetricsHandle};
    use std::sync::Arc;

    /// A toy iterative job: each key's value halves every iteration
    /// (converges to 0). Key space is preserved, so it can chain.
    struct Halver;
    impl MrJob for Halver {
        type InK = u32;
        type InV = f64;
        type MidK = u32;
        type MidV = f64;
        type OutK = u32;
        type OutV = f64;
        fn map(&self, k: &u32, v: &f64, out: &mut Emitter<u32, f64>) {
            out.emit(*k, v / 2.0);
        }
        fn reduce(&self, k: &u32, values: Vec<f64>, out: &mut Emitter<u32, f64>) {
            out.emit(*k, values.into_iter().sum());
        }
    }

    fn runner(nodes: usize) -> JobRunner {
        let spec = Arc::new(ClusterSpec::local(nodes));
        let metrics: MetricsHandle = Arc::new(Metrics::default());
        let dfs = Dfs::with_block_size(Arc::clone(&spec), Arc::clone(&metrics), 2, 1 << 20);
        JobRunner::new(spec, dfs, metrics)
    }

    #[test]
    fn fixed_iteration_chain_halves_values() {
        let r = runner(2);
        let mut clock = TaskClock::default();
        let input: Vec<(u32, f64)> = (0..8).map(|i| (i, 64.0)).collect();
        r.load_input("/init", input, 2, &mut clock).unwrap();

        let outcome = run_iterative(
            &r,
            &Halver,
            &JobConfig::new("halver", 2),
            "/init",
            "/work",
            3,
            None,
        )
        .unwrap();
        assert_eq!(outcome.iterations, 3);
        assert_eq!(outcome.report.iterations(), 3);

        let mut rc = TaskClock::default();
        let out: Vec<(u32, f64)> =
            read_all(r.dfs(), &outcome.final_dir, NodeId(0), &mut rc).unwrap();
        assert_eq!(out.len(), 8);
        assert!(out.iter().all(|&(_, v)| (v - 8.0).abs() < 1e-12));
    }

    #[test]
    fn iteration_times_strictly_increase() {
        let r = runner(2);
        let mut clock = TaskClock::default();
        r.load_input("/init", vec![(0u32, 1.0f64), (1, 2.0)], 1, &mut clock)
            .unwrap();
        let outcome =
            run_iterative(&r, &Halver, &JobConfig::new("h", 1), "/init", "/w", 4, None).unwrap();
        let times = outcome.report.iteration_done;
        assert!(times.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn distance_check_stops_early_and_costs_a_job() {
        let r = runner(2);
        let mut clock = TaskClock::default();
        let input: Vec<(u32, f64)> = (0..4).map(|i| (i, 1.0)).collect();
        r.load_input("/init", input, 2, &mut clock).unwrap();

        // Manhattan distance; after iteration k the per-key delta is
        // 2^-k, total 4 * 2^-k. Threshold 0.2 stops at iteration 5
        // (4/32 = 0.125 < 0.2).
        let check = CheckSpec::new(|_k: &u32, prev: &f64, cur: &f64| (prev - cur).abs(), 0.2);
        let outcome = run_iterative(
            &r,
            &Halver,
            &JobConfig::new("h", 2),
            "/init",
            "/w",
            50,
            Some(&check),
        )
        .unwrap();
        assert_eq!(outcome.iterations, 5, "distances: {:?}", outcome.distances);
        assert!(outcome.distances.last().unwrap() < &0.2);
        // One compute job + one check job per iteration.
        assert_eq!(outcome.report.metrics.jobs_launched, 10);
    }

    #[test]
    fn intermediate_directories_are_cleaned() {
        let r = runner(2);
        let mut clock = TaskClock::default();
        r.load_input("/init", vec![(0u32, 4.0f64)], 1, &mut clock)
            .unwrap();
        let outcome =
            run_iterative(&r, &Halver, &JobConfig::new("h", 1), "/init", "/w", 5, None).unwrap();
        // Only the final (and possibly penultimate) outputs survive.
        let survivors = r.dfs().list("/w/");
        assert!(survivors
            .iter()
            .all(|p| p.starts_with(&outcome.final_dir) || p.starts_with("/w/iter-0004")));
    }
}
