//! Single-job execution in virtual time: the JobTracker running one
//! MapReduce job — split computation, map wave, shuffle, reduce wave,
//! DFS output commit.

use crate::io::{num_parts, part_path, read_part, write_parts};
use crate::job::{Emitter, JobConfig, JobCounters, MrJob};
use crate::schedule::SlotPool;
use bytes::Bytes;
use imr_dfs::{Dfs, DfsError};
use imr_records::{decode_pairs, encode_pairs, group_sorted, merge_runs, sort_run, CodecError};
use imr_simcluster::{ClusterSpec, MetricsHandle, NodeId, TaskClock, VInstant};
use std::fmt;
use std::sync::Arc;

/// Errors from engine execution.
#[derive(Debug)]
pub enum EngineError {
    /// A DFS operation failed.
    Dfs(DfsError),
    /// A record stream failed to decode.
    Codec(CodecError),
    /// The job had no input parts.
    EmptyInput(String),
    /// A native worker thread failed or lost its peers (its channels
    /// disconnected because another worker aborted first).
    Worker(String),
    /// The run configuration is inconsistent with what was requested
    /// (e.g. fault injection without checkpointing enabled).
    Config(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Dfs(e) => write!(f, "engine: {e}"),
            EngineError::Codec(e) => write!(f, "engine: {e}"),
            EngineError::EmptyInput(d) => write!(f, "engine: input directory {d} has no parts"),
            EngineError::Worker(msg) => write!(f, "engine: worker thread: {msg}"),
            EngineError::Config(msg) => write!(f, "engine: invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<DfsError> for EngineError {
    fn from(e: DfsError) -> Self {
        EngineError::Dfs(e)
    }
}

impl From<CodecError> for EngineError {
    fn from(e: CodecError) -> Self {
        EngineError::Codec(e)
    }
}

/// The outcome of one job run.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// When the job was submitted.
    pub submitted: VInstant,
    /// When the last reduce output was committed to DFS.
    pub finished: VInstant,
    /// Aggregated job counters.
    pub counters: JobCounters,
    /// Number of map tasks executed.
    pub map_tasks: usize,
    /// Number of reduce tasks executed.
    pub reduce_tasks: usize,
}

/// Executes MapReduce jobs over one simulated cluster + DFS.
#[derive(Clone)]
pub struct JobRunner {
    cluster: Arc<ClusterSpec>,
    dfs: Dfs,
    metrics: MetricsHandle,
    /// Charge job/task initialization overheads. Disabled to reproduce
    /// the paper's "MapReduce (ex. init.)" reference curve.
    pub charge_init: bool,
}

impl JobRunner {
    /// A runner over the given cluster, DFS and metrics registry.
    pub fn new(cluster: Arc<ClusterSpec>, dfs: Dfs, metrics: MetricsHandle) -> Self {
        JobRunner {
            cluster,
            dfs,
            metrics,
            charge_init: true,
        }
    }

    /// The cluster this runner schedules on.
    pub fn cluster(&self) -> &Arc<ClusterSpec> {
        &self.cluster
    }

    /// The DFS this runner reads and writes.
    pub fn dfs(&self) -> &Dfs {
        &self.dfs
    }

    /// The shared metrics registry.
    pub fn metrics(&self) -> &MetricsHandle {
        &self.metrics
    }

    /// Runs `job` over `input_dir`, writing `conf.num_reduces` parts to
    /// `output_dir`. Returns the job's virtual-time result.
    pub fn run<J: MrJob>(
        &self,
        job: &J,
        conf: &JobConfig,
        input_dir: &str,
        output_dir: &str,
        submit: VInstant,
    ) -> Result<JobResult, EngineError> {
        self.run_multi(job, conf, &[input_dir], output_dir, submit)
    }

    /// As [`run`](Self::run) with several input directories (Hadoop's
    /// `MultipleInputs`): every part of every directory becomes one map
    /// task. The matrix-multiplication join job uses this to read the
    /// tagged cells of both matrices.
    pub fn run_multi<J: MrJob>(
        &self,
        job: &J,
        conf: &JobConfig,
        input_dirs: &[&str],
        output_dir: &str,
        submit: VInstant,
    ) -> Result<JobResult, EngineError> {
        let cost = &self.cluster.cost;
        // Flatten (dir, part) pairs into the map task list.
        let mut splits: Vec<(String, usize)> = Vec::new();
        for dir in input_dirs {
            for i in 0..num_parts(&self.dfs, dir) {
                splits.push(((*dir).to_owned(), i));
            }
        }
        let m = splits.len();
        if m == 0 {
            return Err(EngineError::EmptyInput(input_dirs.join(",")));
        }
        let r = conf.num_reduces;
        self.metrics.jobs_launched.add(1);
        // Stable job ordinal: keys the straggler pattern so that
        // engine variants (with/without init charges) face identical
        // stragglers and differ only structurally.
        let job_ordinal = self.metrics.jobs_launched.get();
        let mut counters = JobCounters::default();

        // Master-side job setup.
        let job_start = if self.charge_init {
            submit + cost.job_setup
        } else {
            submit
        };

        // ---- Map wave -------------------------------------------------
        let mut map_pool = SlotPool::new(&self.cluster, true, job_start);
        // Per map task: the node it ran on, its completion instant, and
        // its R encoded output partitions.
        let mut map_nodes = Vec::with_capacity(m);
        let mut map_done = Vec::with_capacity(m);
        let mut map_parts: Vec<Vec<Bytes>> = Vec::with_capacity(m);

        for (dir, i) in &splits {
            let i = *i;
            let preferred: Vec<NodeId> = self
                .dfs
                .block_locations(&part_path(dir, i))?
                .first()
                .cloned()
                .unwrap_or_default();
            let (node, start) = map_pool.place(job_start, &preferred);
            let speed = self.cluster.speed(node);
            let mut clock = TaskClock::starting_at(start);
            if self.charge_init {
                clock.advance(cost.task_launch);
            }
            self.metrics.tasks_launched.add(1);

            // Side input (distributed cache), fetched from DFS.
            if conf.side_input_bytes > 0 {
                clock.advance(cost.disk_time(conf.side_input_bytes));
                clock.advance(cost.remote_transfer_time(conf.side_input_bytes));
                self.metrics.dfs_read_bytes.add(conf.side_input_bytes);
            }

            // Read + decode the split.
            let in_bytes = self.dfs.len(&part_path(dir, i))?;
            let input: Vec<(J::InK, J::InV)> = read_part(&self.dfs, dir, i, node, &mut clock)?;
            clock.advance(cost.serde_per_byte * in_bytes);

            // User map function over every record.
            let mut emitter = Emitter::new();
            for (k, v) in &input {
                job.map(k, v, &mut emitter);
            }
            let records_in = input.len() as u64;
            counters.map_input_records += records_in;
            self.metrics.map_input_records.add(records_in);
            let raw_out = emitter.into_pairs();
            counters.map_output_records += raw_out.len() as u64;
            // Map-side cost covers both consuming the input records and
            // producing the output records (collect/partition path).
            clock.advance(cost.compute_time(records_in + raw_out.len() as u64, in_bytes, speed));

            // Partition, sort, (combine), encode, spill.
            let mut partitions: Vec<Vec<(J::MidK, J::MidV)>> = (0..r).map(|_| Vec::new()).collect();
            for (k, v) in raw_out {
                let p = job.partition(&k, r);
                partitions[p].push((k, v));
            }
            let mut encoded = Vec::with_capacity(r);
            let mut spill_bytes = 0u64;
            for part in &mut partitions {
                let n_rec = part.len() as u64;
                sort_run(part);
                clock.advance(cost.sort_time(n_rec, speed));
                let final_part: Vec<(J::MidK, J::MidV)> = if job.has_combiner() {
                    let grouped = group_sorted(std::mem::take(part));
                    let mut combined = Vec::new();
                    for (k, vals) in grouped {
                        let n_vals = vals.len() as u64;
                        for v in job.combine(&k, vals) {
                            combined.push((k.clone(), v));
                        }
                        clock.advance(cost.compute_time(n_vals, 0, speed));
                    }
                    combined
                } else {
                    std::mem::take(part)
                };
                counters.shuffle_records += final_part.len() as u64;
                let seg = encode_pairs(&final_part);
                spill_bytes += seg.len() as u64;
                encoded.push(seg);
            }
            counters.shuffle_bytes += spill_bytes;
            clock.advance(cost.serde_per_byte * spill_bytes);
            clock.advance(cost.disk_time(spill_bytes));
            if self.charge_init {
                clock.advance(cost.task_cleanup);
            }
            // Deterministic straggler slowdown (JVM/GC/OS noise).
            let busy = clock.now().duration_since(start);
            clock.advance(busy * cost.straggler(job_ordinal, map_done.len() as u64, 1));
            let mut done = clock.now();
            map_pool.occupy(node, done);

            // Speculative execution: a duplicate attempt on the next
            // earliest slot; the earlier finisher wins. The attempt's
            // virtual duration is re-derived for the alternate node
            // (different speed, non-local read).
            if conf.speculative {
                if let Some((alt_node, alt_start)) = map_pool.place_excluding(job_start, node) {
                    self.metrics.tasks_launched.add(1);
                    let alt_speed = self.cluster.speed(alt_node);
                    let mut alt = TaskClock::starting_at(alt_start);
                    if self.charge_init {
                        alt.advance(cost.task_launch);
                    }
                    alt.advance(cost.disk_time(in_bytes));
                    alt.advance(cost.remote_transfer_time(in_bytes));
                    alt.advance(cost.serde_per_byte * in_bytes);
                    alt.advance(cost.compute_time(
                        records_in + counters.shuffle_records,
                        in_bytes,
                        alt_speed,
                    ));
                    alt.advance(cost.sort_time(counters.shuffle_records, alt_speed));
                    alt.advance(cost.disk_time(spill_bytes));
                    if alt.now() < done {
                        done = alt.now();
                        map_pool.occupy(alt_node, done);
                    }
                }
            }

            map_nodes.push(node);
            map_done.push(done);
            map_parts.push(encoded);
        }

        // ---- Shuffle + reduce wave ------------------------------------
        let mut reduce_pool = SlotPool::new(&self.cluster, false, job_start);
        let mut output_parts: Vec<(NodeId, Vec<(J::OutK, J::OutV)>)> = Vec::with_capacity(r);
        let mut reduce_done = Vec::with_capacity(r);

        for p in 0..r {
            let (node, start) = reduce_pool.place(job_start, &[]);
            let speed = self.cluster.speed(node);
            let mut clock = TaskClock::starting_at(start);
            if self.charge_init {
                clock.advance(cost.task_launch);
            }
            self.metrics.tasks_launched.add(1);

            // Fetch this partition's segment from every map task.
            let mut arrivals = Vec::with_capacity(m);
            let mut runs: Vec<Vec<(J::MidK, J::MidV)>> = Vec::with_capacity(m);
            let mut fetched_bytes = 0u64;
            for i in 0..m {
                let seg = &map_parts[i][p];
                let bytes = seg.len() as u64;
                fetched_bytes += bytes;
                let arrival = map_done[i] + self.cluster.transfer_time(map_nodes[i], node, bytes);
                if map_nodes[i] == node {
                    self.metrics.shuffle_local_bytes.add(bytes);
                } else {
                    self.metrics.shuffle_remote_bytes.add(bytes);
                }
                arrivals.push(arrival);
                runs.push(decode_pairs(seg.clone())?);
            }
            clock.barrier(arrivals);
            let work_start = clock.now();
            clock.advance(cost.serde_per_byte * fetched_bytes);

            // Merge sorted runs and group by key.
            let total_rec: u64 = runs.iter().map(|r| r.len() as u64).sum();
            let merged = merge_runs(runs);
            if m > 1 {
                // k-way merge costs n * log2(k) comparisons.
                let cmps = total_rec as f64 * (m as f64).log2();
                clock.advance(cost.sort_per_cmp * cmps.round() as u64 * (1.0 / speed));
            }
            let groups = group_sorted(merged);
            counters.reduce_input_groups += groups.len() as u64;
            self.metrics.reduce_input_records.add(total_rec);

            // User reduce function per group.
            let mut emitter = Emitter::new();
            for (k, vals) in groups {
                let n_vals = vals.len() as u64;
                job.reduce(&k, vals, &mut emitter);
                // Reduce-side per-value cost is ~1/3 of a map-side
                // record pass (iterator-based consumption).
                clock.advance(cost.compute_time(n_vals.div_ceil(3), 0, speed));
            }
            let out_pairs = emitter.into_pairs();
            counters.reduce_output_records += out_pairs.len() as u64;

            // Commit output part to DFS.
            let payload = encode_pairs(&out_pairs);
            clock.advance(cost.serde_per_byte * payload.len() as u64);
            self.dfs
                .put(&part_path(output_dir, p), payload, node, &mut clock)?;
            if self.charge_init {
                clock.advance(cost.task_cleanup);
            }
            // Deterministic straggler slowdown over the post-barrier work.
            let busy = clock.now().duration_since(work_start);
            clock.advance(busy * cost.straggler(job_ordinal, p as u64, 2));
            let mut done = clock.now();
            reduce_pool.occupy(node, done);

            // Reduce-side speculative execution: a duplicate attempt on
            // the next earliest slot. Its post-barrier work is the
            // primary's, rescaled by the relative node speed (the
            // straggler draw belongs to the attempt, so the duplicate
            // gets its own).
            if conf.speculative {
                if let Some((alt_node, alt_start)) = reduce_pool.place_excluding(job_start, node) {
                    self.metrics.tasks_launched.add(1);
                    let alt_speed = self.cluster.speed(alt_node);
                    let mut alt = TaskClock::starting_at(alt_start);
                    if self.charge_init {
                        alt.advance(cost.task_launch);
                    }
                    let alt_arrivals: Vec<VInstant> = (0..m)
                        .map(|i| {
                            let bytes = map_parts[i][p].len() as u64;
                            map_done[i] + self.cluster.transfer_time(map_nodes[i], alt_node, bytes)
                        })
                        .collect();
                    alt.barrier(alt_arrivals);
                    let scaled = busy * (speed / alt_speed);
                    alt.advance(scaled);
                    alt.advance(scaled * cost.straggler(job_ordinal, p as u64, 3));
                    if alt.now() < done {
                        done = alt.now();
                        reduce_pool.occupy(alt_node, done);
                    }
                }
            }
            reduce_done.push(done);
            output_parts.push((node, out_pairs));
        }

        let finished = reduce_done.into_iter().max().unwrap_or(job_start);
        Ok(JobResult {
            submitted: submit,
            finished,
            counters,
            map_tasks: m,
            reduce_tasks: r,
        })
    }

    /// Loads a typed dataset onto the DFS as `n_parts` parts under
    /// `dir`, charging the load to `clock`.
    pub fn load_input<K: imr_records::Codec, V: imr_records::Codec>(
        &self,
        dir: &str,
        pairs: Vec<(K, V)>,
        n_parts: usize,
        clock: &mut TaskClock,
    ) -> Result<(), EngineError> {
        let parts = crate::io::split_contiguous(pairs, n_parts);
        write_parts(&self.dfs, dir, &parts, clock)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imr_simcluster::Metrics;

    struct WordCount;
    impl MrJob for WordCount {
        type InK = u32;
        type InV = String;
        type MidK = String;
        type MidV = u64;
        type OutK = String;
        type OutV = u64;
        fn map(&self, _k: &u32, line: &String, out: &mut Emitter<String, u64>) {
            for w in line.split_whitespace() {
                out.emit(w.to_owned(), 1);
            }
        }
        fn reduce(&self, k: &String, values: Vec<u64>, out: &mut Emitter<String, u64>) {
            out.emit(k.clone(), values.into_iter().sum());
        }
    }

    fn runner(nodes: usize) -> JobRunner {
        let spec = Arc::new(ClusterSpec::local(nodes));
        let metrics: MetricsHandle = Arc::new(Metrics::default());
        let dfs = Dfs::with_block_size(Arc::clone(&spec), Arc::clone(&metrics), 2, 1 << 20);
        JobRunner::new(spec, dfs, metrics)
    }

    #[test]
    fn word_count_end_to_end() {
        let r = runner(3);
        let mut clock = TaskClock::default();
        let input: Vec<(u32, String)> = vec![
            (0, "the quick brown fox".into()),
            (1, "the lazy dog".into()),
            (2, "the fox".into()),
        ];
        r.load_input("/in", input, 3, &mut clock).unwrap();
        let res = r
            .run(
                &WordCount,
                &JobConfig::new("wc", 2),
                "/in",
                "/out",
                clock.now(),
            )
            .unwrap();
        assert!(res.finished > clock.now());
        assert_eq!(res.map_tasks, 3);
        assert_eq!(res.reduce_tasks, 2);
        assert_eq!(res.counters.map_input_records, 3);
        assert_eq!(res.counters.map_output_records, 9);

        let mut rc = TaskClock::default();
        let mut all: Vec<(String, u64)> =
            crate::io::read_all(r.dfs(), "/out", NodeId(0), &mut rc).unwrap();
        all.sort();
        assert_eq!(
            all,
            vec![
                ("brown".to_string(), 1),
                ("dog".to_string(), 1),
                ("fox".to_string(), 2),
                ("lazy".to_string(), 1),
                ("quick".to_string(), 1),
                ("the".to_string(), 3),
            ]
        );
    }

    #[test]
    fn init_charges_make_jobs_slower() {
        let with_init = runner(2);
        let mut no_init = runner(2);
        no_init.charge_init = false;

        let input: Vec<(u32, String)> = (0..10).map(|i| (i, format!("w{i} w{i}"))).collect();
        let mut c1 = TaskClock::default();
        with_init
            .load_input("/in", input.clone(), 2, &mut c1)
            .unwrap();
        let mut c2 = TaskClock::default();
        no_init.load_input("/in", input, 2, &mut c2).unwrap();

        let a = with_init
            .run(
                &WordCount,
                &JobConfig::new("wc", 2),
                "/in",
                "/out",
                c1.now(),
            )
            .unwrap();
        let b = no_init
            .run(
                &WordCount,
                &JobConfig::new("wc", 2),
                "/in",
                "/out",
                c2.now(),
            )
            .unwrap();
        let a_span = a.finished.duration_since(a.submitted);
        let b_span = b.finished.duration_since(b.submitted);
        assert!(
            a_span > b_span + with_init.cluster().cost.job_setup,
            "init overhead missing: {a_span} vs {b_span}"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let input: Vec<(u32, String)> = (0..50).map(|i| (i, format!("a b{} c", i % 7))).collect();
        let run_once = || {
            let r = runner(4);
            let mut clock = TaskClock::default();
            r.load_input("/in", input.clone(), 4, &mut clock).unwrap();
            let res = r
                .run(
                    &WordCount,
                    &JobConfig::new("wc", 3),
                    "/in",
                    "/out",
                    clock.now(),
                )
                .unwrap();
            (res.finished, res.counters)
        };
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn empty_input_dir_is_an_error() {
        let r = runner(2);
        let res = r.run(
            &WordCount,
            &JobConfig::new("wc", 1),
            "/absent",
            "/out",
            VInstant::EPOCH,
        );
        assert!(matches!(res, Err(EngineError::EmptyInput(_))));
    }

    #[test]
    fn shuffle_bytes_are_counted() {
        let r = runner(2);
        let mut clock = TaskClock::default();
        let input: Vec<(u32, String)> = (0..20).map(|i| (i, "common word".to_string())).collect();
        r.load_input("/in", input, 2, &mut clock).unwrap();
        let res = r
            .run(
                &WordCount,
                &JobConfig::new("wc", 2),
                "/in",
                "/out",
                clock.now(),
            )
            .unwrap();
        assert!(res.counters.shuffle_bytes > 0);
        let m = r.metrics().snapshot();
        assert!(m.shuffle_remote_bytes + m.shuffle_local_bytes >= res.counters.shuffle_bytes);
    }

    #[test]
    fn speculative_execution_rescues_straggler_nodes() {
        // One crippled node, one healthy node, ample slots: the task
        // that lands on the straggler should be overtaken by its
        // speculative duplicate on the healthy node.
        // Two independent runners (same topology) so both runs are job
        // #1 and face identical straggler draws: a paired comparison.
        let make = || {
            let mut topo = ClusterSpec::local(2);
            topo.nodes[0].speed = 0.05;
            topo.nodes[1].speed = 1.0;
            let spec = Arc::new(topo);
            let metrics: MetricsHandle = Arc::new(Metrics::default());
            let dfs = Dfs::with_block_size(Arc::clone(&spec), Arc::clone(&metrics), 2, 1 << 20);
            let r = JobRunner::new(Arc::clone(&spec), dfs, metrics);
            let input: Vec<(u32, String)> = (0..5_000)
                .map(|i| (i, format!("word{} x y z", i % 13)))
                .collect();
            let mut clock = TaskClock::default();
            r.load_input("/in", input, 2, &mut clock).unwrap();
            (r, clock.now())
        };

        let (r1, t1) = make();
        let plain = r1
            .run(&WordCount, &JobConfig::new("wc", 1), "/in", "/o", t1)
            .unwrap();
        let (r2, t2) = make();
        let spec_run = r2
            .run(
                &WordCount,
                &JobConfig::new("wc", 1).with_speculative(),
                "/in",
                "/o",
                t2,
            )
            .unwrap();
        let plain_span = plain.finished.duration_since(plain.submitted);
        let spec_span = spec_run.finished.duration_since(spec_run.submitted);
        assert!(
            spec_span < plain_span,
            "speculation did not help: {spec_span} vs {plain_span}"
        );
        // Results are identical either way.
        let mut c = TaskClock::default();
        let mut a: Vec<(String, u64)> =
            crate::io::read_all(r1.dfs(), "/o", NodeId(0), &mut c).unwrap();
        let mut b: Vec<(String, u64)> =
            crate::io::read_all(r2.dfs(), "/o", NodeId(0), &mut c).unwrap();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }
}
