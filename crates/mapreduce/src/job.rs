//! The user-facing job abstraction of the baseline engine: Hadoop's
//! `Mapper`/`Reducer`/`Combiner` contract.

use imr_records::{HashPartitioner, Key, Partitioner, Value};

/// Collects the key/value pairs a map or reduce function emits.
#[derive(Debug)]
pub struct Emitter<K, V> {
    pairs: Vec<(K, V)>,
}

impl<K, V> Emitter<K, V> {
    /// An empty emitter.
    pub fn new() -> Self {
        Emitter { pairs: Vec::new() }
    }

    /// Emits one pair.
    pub fn emit(&mut self, key: K, value: V) {
        self.pairs.push((key, value));
    }

    /// Number of pairs emitted so far.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True if nothing was emitted.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Consumes the emitter, returning the emitted pairs in order.
    pub fn into_pairs(self) -> Vec<(K, V)> {
        self.pairs
    }
}

impl<K, V> Default for Emitter<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

/// A classic MapReduce job: `map: (InK, InV) → [(MidK, MidV)]`,
/// `reduce: (MidK, [MidV]) → [(OutK, OutV)]`, with an optional
/// map-side combiner.
///
/// Implementations hold only configuration (they are shared across
/// simulated tasks), so `&self` methods must be pure with respect to
/// the job state.
pub trait MrJob: Send + Sync {
    /// Map input key.
    type InK: Key;
    /// Map input value.
    type InV: Value;
    /// Intermediate (shuffle) key.
    type MidK: Key;
    /// Intermediate (shuffle) value.
    type MidV: Value;
    /// Reduce output key.
    type OutK: Key;
    /// Reduce output value.
    type OutV: Value;

    /// The map function, applied to each input record.
    fn map(&self, key: &Self::InK, value: &Self::InV, out: &mut Emitter<Self::MidK, Self::MidV>);

    /// The reduce function, applied to each intermediate key group.
    fn reduce(
        &self,
        key: &Self::MidK,
        values: Vec<Self::MidV>,
        out: &mut Emitter<Self::OutK, Self::OutV>,
    );

    /// Whether the map side runs the combiner before shuffling.
    fn has_combiner(&self) -> bool {
        false
    }

    /// Map-side combiner: local aggregation over one key's values
    /// before shuffle (Hadoop `Combiner`). Only called when
    /// [`has_combiner`](MrJob::has_combiner) is true. Default keeps
    /// values unchanged.
    fn combine(&self, _key: &Self::MidK, values: Vec<Self::MidV>) -> Vec<Self::MidV> {
        values
    }

    /// Routes an intermediate key to one of `n` reduce partitions.
    /// Defaults to deterministic hash partitioning.
    fn partition(&self, key: &Self::MidK, n: usize) -> usize {
        HashPartitioner.partition(key, n)
    }
}

/// Per-job engine configuration (a slice of Hadoop's `JobConf`).
#[derive(Debug, Clone)]
pub struct JobConfig {
    /// Job name, used in DFS paths and reports.
    pub name: String,
    /// Number of reduce tasks (and thus output partitions).
    pub num_reduces: usize,
    /// Launch a speculative duplicate attempt for each task and keep the
    /// earlier finisher (Hadoop's speculative execution [40]).
    pub speculative: bool,
    /// Bytes of side input (Hadoop distributed cache) each map task
    /// loads at start — e.g. the current centroid file in the baseline
    /// K-means implementation. Charged as a remote DFS read per task.
    pub side_input_bytes: u64,
}

impl JobConfig {
    /// A config with the given name and reduce count.
    pub fn new(name: impl Into<String>, num_reduces: usize) -> Self {
        assert!(num_reduces > 0, "a job needs at least one reduce task");
        JobConfig {
            name: name.into(),
            num_reduces,
            speculative: false,
            side_input_bytes: 0,
        }
    }

    /// Enables speculative execution.
    pub fn with_speculative(mut self) -> Self {
        self.speculative = true;
        self
    }

    /// Sets the per-map-task side-input (distributed cache) size.
    pub fn with_side_input_bytes(mut self, bytes: u64) -> Self {
        self.side_input_bytes = bytes;
        self
    }
}

/// Per-job counter totals reported after a run (Hadoop job counters).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct JobCounters {
    /// Records read by all map tasks.
    pub map_input_records: u64,
    /// Records emitted by all map tasks (before combining).
    pub map_output_records: u64,
    /// Records shipped to reducers (after combining).
    pub shuffle_records: u64,
    /// Key groups processed by all reduce tasks.
    pub reduce_input_groups: u64,
    /// Records emitted by all reduce tasks.
    pub reduce_output_records: u64,
    /// Bytes of encoded map output shuffled.
    pub shuffle_bytes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    struct WordCount;
    impl MrJob for WordCount {
        type InK = u32;
        type InV = String;
        type MidK = String;
        type MidV = u64;
        type OutK = String;
        type OutV = u64;

        fn map(&self, _k: &u32, line: &String, out: &mut Emitter<String, u64>) {
            for word in line.split_whitespace() {
                out.emit(word.to_owned(), 1);
            }
        }

        fn reduce(&self, key: &String, values: Vec<u64>, out: &mut Emitter<String, u64>) {
            out.emit(key.clone(), values.into_iter().sum());
        }

        fn has_combiner(&self) -> bool {
            true
        }

        fn combine(&self, _key: &String, values: Vec<u64>) -> Vec<u64> {
            vec![values.into_iter().sum()]
        }
    }

    #[test]
    fn emitter_collects_in_order() {
        let mut e = Emitter::new();
        assert!(e.is_empty());
        WordCount.map(&0, &"a b a".to_string(), &mut e);
        assert_eq!(e.len(), 3);
        assert_eq!(
            e.into_pairs(),
            vec![("a".into(), 1), ("b".into(), 1), ("a".into(), 1)]
        );
    }

    #[test]
    fn combiner_contract() {
        assert!(WordCount.has_combiner());
        assert_eq!(WordCount.combine(&"a".into(), vec![1, 1, 1]), vec![3]);
    }

    #[test]
    fn default_partition_is_stable_and_bounded() {
        let p1 = WordCount.partition(&"hello".to_string(), 7);
        let p2 = WordCount.partition(&"hello".to_string(), 7);
        assert_eq!(p1, p2);
        assert!(p1 < 7);
    }

    #[test]
    #[should_panic(expected = "at least one reduce")]
    fn zero_reduces_rejected() {
        let _ = JobConfig::new("bad", 0);
    }
}
