//! Part-file conventions over the DFS.
//!
//! A dataset is a directory of part files (`<dir>/part-00000`, …), one
//! per task that produced it — exactly Hadoop's output layout. Each part
//! is a contiguous segment of encoded key/value pairs.

use bytes::Bytes;
use imr_dfs::{Dfs, DfsError};
use imr_records::{decode_pairs, encode_pairs, Codec};
use imr_simcluster::{NodeId, TaskClock};

/// The DFS path of part `i` inside `dir`.
pub fn part_path(dir: &str, i: usize) -> String {
    format!("{}/part-{:05}", dir.trim_end_matches('/'), i)
}

/// Number of parts in a dataset directory.
pub fn num_parts(dfs: &Dfs, dir: &str) -> usize {
    let prefix = format!("{}/part-", dir.trim_end_matches('/'));
    dfs.list(&prefix).len()
}

/// Writes `parts[i]` as part `i` of `dir`, spreading the writes
/// round-robin over the cluster nodes (as a distributed loader would).
/// Charges the provided clock for the slowest node's writes, which is
/// when the dataset is fully available.
pub fn write_parts<K: Codec, V: Codec>(
    dfs: &Dfs,
    dir: &str,
    parts: &[Vec<(K, V)>],
    clock: &mut TaskClock,
) -> Result<(), DfsError> {
    let n = dfs.cluster().len();
    let mut node_clocks: Vec<TaskClock> = vec![TaskClock::starting_at(clock.now()); n];
    for (i, part) in parts.iter().enumerate() {
        let node = NodeId((i % n) as u32);
        let payload = encode_pairs(part);
        dfs.write(
            &part_path(dir, i),
            payload,
            node,
            &mut node_clocks[node.index()],
        )?;
    }
    clock.barrier(node_clocks.iter().map(|c| c.now()));
    Ok(())
}

/// Reads and decodes one part. The read is charged to `clock` from the
/// perspective of `reader`.
pub fn read_part<K: Codec, V: Codec>(
    dfs: &Dfs,
    dir: &str,
    i: usize,
    reader: NodeId,
    clock: &mut TaskClock,
) -> Result<Vec<(K, V)>, DfsError> {
    let raw: Bytes = dfs.read(&part_path(dir, i), reader, clock)?;
    decode_pairs(raw).map_err(|e| DfsError::BlockLost(format!("{}: {e}", part_path(dir, i))))
}

/// Reads every part of a dataset into one vector (small datasets,
/// verification, and driver-side aggregation).
pub fn read_all<K: Codec, V: Codec>(
    dfs: &Dfs,
    dir: &str,
    reader: NodeId,
    clock: &mut TaskClock,
) -> Result<Vec<(K, V)>, DfsError> {
    let mut out = Vec::new();
    for i in 0..num_parts(dfs, dir) {
        out.extend(read_part(dfs, dir, i, reader, clock)?);
    }
    Ok(out)
}

/// Deletes all parts of a dataset directory (ignores absent parts).
pub fn delete_dir(dfs: &Dfs, dir: &str) {
    let prefix = format!("{}/", dir.trim_end_matches('/'));
    for path in dfs.list(&prefix) {
        let _ = dfs.delete(&path);
    }
}

/// Splits `pairs` into `n` parts by round-robin chunks of contiguous
/// records — the layout a sequential loader produces. Keys are *not*
/// co-partitioned; use a partitioner for that.
pub fn split_contiguous<K, V>(pairs: Vec<(K, V)>, n: usize) -> Vec<Vec<(K, V)>> {
    assert!(n > 0, "cannot split into zero parts");
    let total = pairs.len();
    let per = total.div_ceil(n).max(1);
    let mut parts: Vec<Vec<(K, V)>> = Vec::with_capacity(n);
    let mut it = pairs.into_iter();
    for _ in 0..n {
        let chunk: Vec<(K, V)> = it.by_ref().take(per).collect();
        parts.push(chunk);
    }
    debug_assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), total);
    parts
}

#[cfg(test)]
mod tests {
    use super::*;
    use imr_simcluster::{ClusterSpec, Metrics};
    use std::sync::Arc;

    fn dfs() -> Dfs {
        Dfs::with_block_size(
            Arc::new(ClusterSpec::local(3)),
            Arc::new(Metrics::default()),
            2,
            1 << 16,
        )
    }

    #[test]
    fn parts_round_trip() {
        let fs = dfs();
        let mut clock = TaskClock::default();
        let parts: Vec<Vec<(u32, f64)>> = vec![vec![(1, 1.0), (2, 2.0)], vec![(3, 3.0)], vec![]];
        write_parts(&fs, "/data/in", &parts, &mut clock).unwrap();
        assert_eq!(num_parts(&fs, "/data/in"), 3);
        let mut rc = TaskClock::default();
        for (i, expected) in parts.iter().enumerate() {
            let got: Vec<(u32, f64)> = read_part(&fs, "/data/in", i, NodeId(0), &mut rc).unwrap();
            assert_eq!(&got, expected);
        }
        let all: Vec<(u32, f64)> = read_all(&fs, "/data/in", NodeId(1), &mut rc).unwrap();
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn delete_dir_removes_every_part() {
        let fs = dfs();
        let mut clock = TaskClock::default();
        let parts: Vec<Vec<(u32, u32)>> = vec![vec![(1, 1)], vec![(2, 2)]];
        write_parts(&fs, "/tmp/x", &parts, &mut clock).unwrap();
        delete_dir(&fs, "/tmp/x");
        assert_eq!(num_parts(&fs, "/tmp/x"), 0);
    }

    #[test]
    fn split_contiguous_covers_everything() {
        let pairs: Vec<(u32, u32)> = (0..10).map(|i| (i, i)).collect();
        let parts = split_contiguous(pairs.clone(), 3);
        assert_eq!(parts.len(), 3);
        let flat: Vec<(u32, u32)> = parts.into_iter().flatten().collect();
        assert_eq!(flat, pairs);
        // More parts than records: trailing parts are empty.
        let parts = split_contiguous(vec![(1u32, 1u32)], 4);
        assert_eq!(parts.len(), 4);
        assert_eq!(parts[0], vec![(1, 1)]);
        assert!(parts[1..].iter().all(Vec::is_empty));
    }

    #[test]
    fn part_paths_are_zero_padded_and_sorted() {
        assert_eq!(part_path("/d", 0), "/d/part-00000");
        assert_eq!(part_path("/d/", 12), "/d/part-00012");
        assert!(part_path("/d", 2) < part_path("/d", 10));
    }
}
