//! # imr-mapreduce — the Hadoop-like baseline engine
//!
//! A faithful stand-in for stock Hadoop MapReduce over the simulated
//! cluster and DFS, providing the baseline every figure of the paper
//! compares against:
//!
//! * [`MrJob`] — the `Mapper`/`Reducer`/`Combiner` contract;
//! * [`JobRunner`] — one-job execution: job setup, slot-scheduled map
//!   wave (with locality preference and optional speculative
//!   execution), sort/spill/combine, shuffle, reduce wave, DFS commit;
//! * [`run_iterative`] — the client-side driver loop that chains one
//!   job per iteration plus an optional per-iteration termination-check
//!   job, reproducing all three §2.2 limitations.

#![forbid(unsafe_code)]
// The engines walk several parallel per-task arrays by index; indexed
// loops keep those lock-step walks explicit. Phase signatures carry
// the full generic state on purpose.
#![allow(clippy::needless_range_loop, clippy::type_complexity)]
#![warn(missing_docs)]

mod driver;
pub mod io;
mod job;
mod runner;
mod schedule;

pub use driver::{run_iterative, CheckSpec, IterativeOutcome};
pub use job::{Emitter, JobConfig, JobCounters, MrJob};
pub use runner::{EngineError, JobResult, JobRunner};
pub use schedule::SlotPool;
