//! Property tests: hostile bytes on the wire never panic the frame
//! reader or the message decoders — every input yields a typed error
//! or a valid message, with no unbounded allocation.

use bytes::Bytes;
use imr_net::frame::{FrameReader, MAX_FRAME, PREAMBLE_LEN};
use imr_net::proto::{ToCoord, ToWorker};
use imr_net::NetError;
use imr_records::Codec;
use proptest::prelude::*;

proptest! {
    #[test]
    fn arbitrary_bytes_never_panic_the_reader(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let mut r = FrameReader::new(std::io::Cursor::new(data));
        // Preamble check first (the real handshake order), then keep
        // reading frames until the stream errors out or ends. Both
        // calls must return, never panic.
        if r.expect_preamble().is_ok() {
            for _ in 0..64 {
                match r.read() {
                    Ok(payload) => {
                        // Whatever survived framing feeds the decoders;
                        // they must also fail typed, never panic.
                        let mut b = payload.clone();
                        let _ = ToWorker::decode(&mut b);
                        let mut b = payload;
                        let _ = ToCoord::decode(&mut b);
                    }
                    Err(_) => break,
                }
            }
        }
    }

    #[test]
    fn corrupt_length_prefixes_never_allocate_above_max_frame(len_word in any::<u32>()) {
        // A frame whose length prefix decodes above MAX_FRAME must be
        // rejected before the body allocation.
        let len_bytes = len_word.to_be_bytes();
        let mut data = Vec::new();
        data.extend_from_slice(&imr_net::frame::preamble());
        data.extend_from_slice(&len_bytes);
        data.extend_from_slice(&[0u8; 4]); // crc
        let mut r = FrameReader::new(std::io::Cursor::new(data));
        r.expect_preamble().unwrap();
        let len = u32::from_be_bytes(len_bytes) as usize;
        match r.read() {
            Err(NetError::FrameTooLarge(l)) => prop_assert!(l > MAX_FRAME && l == len),
            Err(_) => prop_assert!(len <= MAX_FRAME),
            Ok(payload) => prop_assert!(payload.is_empty() && len == 0),
        }
    }

    #[test]
    fn arbitrary_bytes_never_panic_the_decoders(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut b = Bytes::from(data.clone());
        let _ = ToWorker::decode(&mut b);
        let mut b = Bytes::from(data);
        let _ = ToCoord::decode(&mut b);
    }

    #[test]
    fn truncating_a_valid_stream_is_a_typed_error(cut in 0usize..64) {
        use imr_net::frame::FrameWriter;
        let mut w = FrameWriter::new(Vec::new()).unwrap();
        w.write(b"0123456789abcdef0123456789abcdef").unwrap();
        let mut buf = std::mem::take(w.get_mut());
        let keep = buf.len().saturating_sub(cut);
        buf.truncate(keep);
        let mut r = FrameReader::new(std::io::Cursor::new(buf));
        if keep < PREAMBLE_LEN {
            prop_assert!(r.expect_preamble().is_err());
        } else {
            r.expect_preamble().unwrap();
            match r.read() {
                Ok(payload) => prop_assert_eq!(payload.as_slice(), &b"0123456789abcdef0123456789abcdef"[..]),
                Err(NetError::Io(_)) | Err(NetError::Closed) => {}
                Err(other) => prop_assert!(false, "unexpected error class: {other:?}"),
            }
        }
    }
}
