//! Transport layer for the native backend.
//!
//! The iMapReduce paper (§3.2–3.3) keeps a *persistent connection* from
//! each reduce task to its one-to-one map task for the whole iterative
//! job, and relies on that connection's bounded buffering for the
//! asynchronous-map backpressure. This crate abstracts that connection
//! behind the [`Transport`] trait and provides two implementations:
//!
//! * [`ChannelMesh`] — the in-process bounded-crossbeam-channel matrix
//!   used by the thread backend (one link per pair, n senders × n
//!   receivers each).
//! * [`WorkerConn`] — the worker-process side of a hub-and-spoke TCP
//!   topology: one persistent connection per worker process to the
//!   coordinator, which routes shuffle segments between pairs, runs the
//!   barrier/broadcast/distance collectives, and proxies DFS access.
//!   Frames are length-prefixed binary ([`frame`]), messages are
//!   tag-byte encoded with the workspace [`imr_records::Codec`]
//!   ([`proto`]), and per-link in-flight segments are bounded by an
//!   explicit credit scheme so the channel backend's `bounded(1)`
//!   backpressure semantics carry over unchanged.
//!
//! "Reconnect with replay" after a failure is realized one level up: the
//! supervisor rolls every pair back to the last common checkpoint epoch
//! and respawns worker processes, which open fresh connections tagged
//! with the new generation number.

pub mod chaos;
pub mod conn;
pub mod crc;
pub mod frame;
pub mod policy;
pub mod proto;
pub mod transport;

pub use chaos::{ChaosConfig, ChaosDirection, ChaosState, ChaosStream, FrameAction};
pub use conn::WorkerConn;
pub use frame::{FrameReader, FrameWriter};
pub use policy::NetPolicy;
pub use transport::{ChannelLink, ChannelMesh, Closed, Transport};

use imr_mapreduce::EngineError;
use imr_records::CodecError;
use std::fmt;

/// Errors surfaced by the transport layer.
#[derive(Debug)]
pub enum NetError {
    /// The peer closed the connection cleanly at a frame boundary, or
    /// the connection was poisoned for teardown.
    Closed,
    /// An I/O error, including truncation in the middle of a frame.
    Io(String),
    /// A frame length prefix exceeded [`frame::MAX_FRAME`] — treated as
    /// protocol corruption, never allocated.
    FrameTooLarge(usize),
    /// A frame body failed to decode.
    Codec(CodecError),
    /// The peer violated the message protocol (bad handshake, stale
    /// generation, out-of-range pair id, remote-side failure message).
    Protocol(String),
    /// A frame failed its CRC check against the expected sequence
    /// number — a flipped bit, a dropped frame or a duplicate. The
    /// connection is unusable and must be torn down into the
    /// reconnect-with-replay path.
    Corrupt {
        /// The sequence number the receiver expected.
        seq: u64,
    },
    /// The peer's stream preamble announced an incompatible wire
    /// protocol (wrong magic or version).
    Version(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Closed => write!(f, "connection closed"),
            NetError::Io(msg) => write!(f, "i/o error: {msg}"),
            NetError::FrameTooLarge(len) => {
                write!(f, "frame length {len} exceeds maximum {}", frame::MAX_FRAME)
            }
            NetError::Codec(e) => write!(f, "codec error: {e}"),
            NetError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            NetError::Corrupt { seq } => {
                write!(
                    f,
                    "frame {seq} failed its integrity check (corrupt, dropped or duplicated frame)"
                )
            }
            NetError::Version(msg) => write!(f, "wire version mismatch: {msg}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e.to_string())
    }
}

impl From<CodecError> for NetError {
    fn from(e: CodecError) -> Self {
        NetError::Codec(e)
    }
}

impl From<NetError> for EngineError {
    fn from(e: NetError) -> Self {
        match e {
            NetError::Codec(c) => EngineError::Codec(c),
            other => EngineError::Worker(format!("transport: {other}")),
        }
    }
}
