//! Coordinator ⇄ worker message protocol for the TCP transport.
//!
//! Every message is one frame ([`crate::frame`]); the payload is a tag
//! byte followed by the [`Codec`]-encoded fields. Shuffle segments,
//! broadcast parts and checkpoint bodies travel as opaque `Bytes` —
//! already `encode_pairs`-encoded by the worker — so the coordinator
//! routes them without knowing the job's key/state types.

use bytes::{Bytes, BytesMut};
use imr_records::{Codec, CodecError, CodecResult};

/// Messages sent from a worker process to the coordinator.
#[derive(Debug, Clone, PartialEq)]
pub enum ToCoord {
    /// Connection handshake: which pair this process runs, which
    /// supervisor generation spawned it (stale reconnects are refused)
    /// and which job it was spawned for (a coordinator serving many
    /// jobs refuses a worker that dialed the wrong one).
    Hello {
        pair: usize,
        generation: u64,
        job: u64,
    },
    /// A shuffle segment for pair `dest` (consumes one credit).
    Segment { dest: usize, payload: Bytes },
    /// The segment from `src` was consumed; grant its producer a credit.
    Credit { src: usize },
    /// Arrival at the synchronization barrier.
    BarrierArrive,
    /// This pair's encoded state part for a one2all exchange.
    Broadcast { payload: Bytes },
    /// This pair's local distance contribution for termination voting.
    Distance { d: f64, has_prev: bool },
    /// Heartbeat after completing `iteration` (feeds the watchdog and
    /// the coordinator-side per-iteration records used for reporting).
    Beat {
        iteration: usize,
        busy_secs: f64,
        d: f64,
        has_prev: bool,
    },
    /// Checkpoint body for `iteration`; the coordinator persists it.
    /// `hist` is this pair's generation-local distance history through
    /// `iteration` (`(d, has_prev)` per completed iteration), persisted
    /// next to the snapshot so a restarted coordinator can rebuild the
    /// per-iteration records a durable resume needs.
    Ckpt {
        iteration: usize,
        payload: Bytes,
        hist: Vec<(f64, bool)>,
    },
    /// Ask the coordinator to read DFS file `<dir>/part-<part>`.
    ReadPart { dir: String, part: usize },
    /// Terminal status of this worker process.
    Outcome(WireOutcome),
    /// A batch of `imr_trace` events (56-byte records, see
    /// `imr_trace::encode_events`), timestamped on the worker's clock;
    /// the coordinator rebases them onto its own timeline and merges
    /// them into the job trace. Best-effort: dropped when tracing is
    /// off.
    Trace { payload: Bytes },
    /// A delta segment for pair `dest` (barrier-free accumulative
    /// mode). Delta rounds send exactly one — possibly empty — segment
    /// to every pair per round and consume the same credit window as
    /// shuffle segments (a run uses either shuffle or delta frames,
    /// never both).
    Delta { dest: usize, payload: Bytes },
    /// Per-check accumulative-mode counter report, folded into the
    /// coordinator's real metrics registry (`deltas_sent`,
    /// `priority_preemptions`, `termination_checks`).
    DeltaStats {
        deltas: u64,
        preemptions: u64,
        checks: u64,
    },
    /// Incremental-mode patch receipt: the worker decoded its epoch-0
    /// warm-start part and echoes what it saw (`keys` restored, raw
    /// `bytes` length and FNV-64 `digest`) so the coordinator can
    /// verify the plan arrived intact (see [`ToWorker::Patch`]).
    PatchStats { keys: u64, bytes: u64, digest: u64 },
    /// A batch of encoded telemetry samples + phase-histogram deltas
    /// (see `imr_telemetry::encode_batch`), timestamped on the worker's
    /// clock; the coordinator rebases the stamps onto its own timeline
    /// and merges the batch into the job's telemetry registry, exactly
    /// like [`ToCoord::Trace`] batches. Best-effort: dropped when
    /// telemetry is off or the payload is malformed.
    Telemetry { payload: Bytes },
}

/// Messages sent from the coordinator to a worker process.
#[derive(Debug, Clone, PartialEq)]
pub enum ToWorker {
    /// First frame on every connection: the job/generation parameters.
    Setup(Box<WorkerSetup>),
    /// A shuffle segment produced by pair `src`.
    Segment { src: usize, payload: Bytes },
    /// Pair `dest` consumed one of our segments; restore a credit.
    Credit { dest: usize },
    /// All pairs arrived at the barrier; proceed.
    BarrierRelease,
    /// All pairs' broadcast parts, in task order.
    BroadcastAll { parts: Vec<Bytes> },
    /// The task-order sum of all pairs' distances.
    DistanceTotal { total: f64, any_prev: bool },
    /// Successful [`ToCoord::ReadPart`] response.
    PartData { payload: Bytes },
    /// Failed [`ToCoord::ReadPart`] response.
    PartErr { message: String },
    /// The generation is being torn down; abort at the next check.
    Poison,
    /// Orderly shutdown: the run is over (or the service is retiring
    /// this worker) and the process should exit cleanly — success, not
    /// a rollback. Distinguished from [`ToWorker::Poison`] so recovery
    /// triage never mistakes a drained worker for a failed one.
    Drain,
    /// A delta segment produced by pair `src` (barrier-free
    /// accumulative mode; see [`ToCoord::Delta`]).
    Delta { src: usize, payload: Bytes },
    /// Incremental-mode patch expectation, sent right after `Setup`
    /// when a generation starts at epoch 0 with `incremental` set: the
    /// raw `bytes` length and FNV-64 `digest` of the warm-start state
    /// part the coordinator planned for this pair. The worker compares
    /// them against what it actually read before restoring its store
    /// and replies with [`ToCoord::PatchStats`].
    Patch { bytes: u64, digest: u64 },
}

/// Terminal worker status carried by [`ToCoord::Outcome`].
#[derive(Debug, Clone, PartialEq)]
pub struct WireOutcome {
    pub kind: OutcomeKind,
    pub at_iteration: usize,
    /// Human-readable failure detail (empty unless `kind` is `Error`).
    pub message: String,
    /// Encoded final state (empty unless `kind` is `Finished`).
    pub payload: Bytes,
}

/// Discriminant for [`WireOutcome`]; mirrors the supervisor's
/// per-pair outcome triage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutcomeKind {
    Finished,
    Induced,
    Stalled,
    Aborted,
    Error,
}

/// Job/generation parameters delivered to a worker at connect time.
/// Mirrors the thread backend's per-pair configuration plus the DFS
/// layout the coordinator proxies reads for.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerSetup {
    /// Job tag; echoes the worker's [`ToCoord::Hello`] job id.
    pub job: u64,
    pub num_tasks: usize,
    /// Checkpoint epoch to resume from (0 on a fresh run).
    pub epoch: usize,
    pub one2all: bool,
    pub sync: bool,
    pub distance_threshold: Option<f64>,
    pub max_iterations: usize,
    pub checkpoint_interval: usize,
    /// Number of `part-*` files under `state_dir`.
    pub num_state_parts: usize,
    pub state_dir: String,
    pub static_dir: String,
    pub output_dir: String,
    /// Scripted fault plan for this pair (iterations to fail at).
    pub kills: Vec<usize>,
    pub hangs: Vec<usize>,
    pub delays: Vec<(usize, u64)>,
    /// Emulated node speed (< 1.0 stretches busy time).
    pub speed: f64,
    /// Test hook: exit the process abruptly (no outcome frame) after
    /// this iteration, simulating an unscripted worker crash.
    pub crash_after: Option<usize>,
    /// Run the barrier-free delta-accumulative loop instead of the
    /// map/reduce iteration loop (requires an `Accumulative` job).
    pub accumulative: bool,
    /// Keys processed per delta round (0 = all pending keys).
    pub delta_batch: usize,
    /// Delta rounds between termination checks.
    pub check_every: usize,
    /// Incremental warm start: epoch-0 state parts hold planned
    /// `(key, (value, pending))` entries to restore, guarded by a
    /// [`ToWorker::Patch`] / [`ToCoord::PatchStats`] handshake.
    pub incremental: bool,
}

impl Codec for OutcomeKind {
    fn encode(&self, buf: &mut BytesMut) {
        let tag: u8 = match self {
            OutcomeKind::Finished => 0,
            OutcomeKind::Induced => 1,
            OutcomeKind::Stalled => 2,
            OutcomeKind::Aborted => 3,
            OutcomeKind::Error => 4,
        };
        tag.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> CodecResult<Self> {
        Ok(match u8::decode(buf)? {
            0 => OutcomeKind::Finished,
            1 => OutcomeKind::Induced,
            2 => OutcomeKind::Stalled,
            3 => OutcomeKind::Aborted,
            4 => OutcomeKind::Error,
            _ => return Err(CodecError::Corrupt("unknown outcome kind")),
        })
    }
    fn encoded_len(&self) -> usize {
        1
    }
}

impl Codec for WireOutcome {
    fn encode(&self, buf: &mut BytesMut) {
        self.kind.encode(buf);
        self.at_iteration.encode(buf);
        self.message.encode(buf);
        self.payload.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> CodecResult<Self> {
        Ok(WireOutcome {
            kind: OutcomeKind::decode(buf)?,
            at_iteration: usize::decode(buf)?,
            message: String::decode(buf)?,
            payload: Bytes::decode(buf)?,
        })
    }
    fn encoded_len(&self) -> usize {
        self.kind.encoded_len()
            + self.at_iteration.encoded_len()
            + self.message.encoded_len()
            + self.payload.encoded_len()
    }
}

impl Codec for WorkerSetup {
    fn encode(&self, buf: &mut BytesMut) {
        self.job.encode(buf);
        self.num_tasks.encode(buf);
        self.epoch.encode(buf);
        self.one2all.encode(buf);
        self.sync.encode(buf);
        self.distance_threshold.encode(buf);
        self.max_iterations.encode(buf);
        self.checkpoint_interval.encode(buf);
        self.num_state_parts.encode(buf);
        self.state_dir.encode(buf);
        self.static_dir.encode(buf);
        self.output_dir.encode(buf);
        self.kills.encode(buf);
        self.hangs.encode(buf);
        self.delays.encode(buf);
        self.speed.encode(buf);
        self.crash_after.encode(buf);
        self.accumulative.encode(buf);
        self.delta_batch.encode(buf);
        self.check_every.encode(buf);
        self.incremental.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> CodecResult<Self> {
        Ok(WorkerSetup {
            job: u64::decode(buf)?,
            num_tasks: usize::decode(buf)?,
            epoch: usize::decode(buf)?,
            one2all: bool::decode(buf)?,
            sync: bool::decode(buf)?,
            distance_threshold: Option::<f64>::decode(buf)?,
            max_iterations: usize::decode(buf)?,
            checkpoint_interval: usize::decode(buf)?,
            num_state_parts: usize::decode(buf)?,
            state_dir: String::decode(buf)?,
            static_dir: String::decode(buf)?,
            output_dir: String::decode(buf)?,
            kills: Vec::<usize>::decode(buf)?,
            hangs: Vec::<usize>::decode(buf)?,
            delays: Vec::<(usize, u64)>::decode(buf)?,
            speed: f64::decode(buf)?,
            crash_after: Option::<usize>::decode(buf)?,
            accumulative: bool::decode(buf)?,
            delta_batch: usize::decode(buf)?,
            check_every: usize::decode(buf)?,
            incremental: bool::decode(buf)?,
        })
    }
    fn encoded_len(&self) -> usize {
        self.job.encoded_len()
            + self.num_tasks.encoded_len()
            + self.epoch.encoded_len()
            + self.one2all.encoded_len()
            + self.sync.encoded_len()
            + self.distance_threshold.encoded_len()
            + self.max_iterations.encoded_len()
            + self.checkpoint_interval.encoded_len()
            + self.num_state_parts.encoded_len()
            + self.state_dir.encoded_len()
            + self.static_dir.encoded_len()
            + self.output_dir.encoded_len()
            + self.kills.encoded_len()
            + self.hangs.encoded_len()
            + self.delays.encoded_len()
            + self.speed.encoded_len()
            + self.crash_after.encoded_len()
            + self.accumulative.encoded_len()
            + self.delta_batch.encoded_len()
            + self.check_every.encoded_len()
            + self.incremental.encoded_len()
    }
}

impl Codec for ToCoord {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            ToCoord::Hello {
                pair,
                generation,
                job,
            } => {
                0u8.encode(buf);
                pair.encode(buf);
                generation.encode(buf);
                job.encode(buf);
            }
            ToCoord::Segment { dest, payload } => {
                1u8.encode(buf);
                dest.encode(buf);
                payload.encode(buf);
            }
            ToCoord::Credit { src } => {
                2u8.encode(buf);
                src.encode(buf);
            }
            ToCoord::BarrierArrive => 3u8.encode(buf),
            ToCoord::Broadcast { payload } => {
                4u8.encode(buf);
                payload.encode(buf);
            }
            ToCoord::Distance { d, has_prev } => {
                5u8.encode(buf);
                d.encode(buf);
                has_prev.encode(buf);
            }
            ToCoord::Beat {
                iteration,
                busy_secs,
                d,
                has_prev,
            } => {
                6u8.encode(buf);
                iteration.encode(buf);
                busy_secs.encode(buf);
                d.encode(buf);
                has_prev.encode(buf);
            }
            ToCoord::Ckpt {
                iteration,
                payload,
                hist,
            } => {
                7u8.encode(buf);
                iteration.encode(buf);
                payload.encode(buf);
                hist.encode(buf);
            }
            ToCoord::ReadPart { dir, part } => {
                8u8.encode(buf);
                dir.encode(buf);
                part.encode(buf);
            }
            ToCoord::Outcome(outcome) => {
                9u8.encode(buf);
                outcome.encode(buf);
            }
            ToCoord::Trace { payload } => {
                10u8.encode(buf);
                payload.encode(buf);
            }
            ToCoord::Delta { dest, payload } => {
                11u8.encode(buf);
                dest.encode(buf);
                payload.encode(buf);
            }
            ToCoord::DeltaStats {
                deltas,
                preemptions,
                checks,
            } => {
                12u8.encode(buf);
                deltas.encode(buf);
                preemptions.encode(buf);
                checks.encode(buf);
            }
            ToCoord::PatchStats {
                keys,
                bytes,
                digest,
            } => {
                13u8.encode(buf);
                keys.encode(buf);
                bytes.encode(buf);
                digest.encode(buf);
            }
            ToCoord::Telemetry { payload } => {
                14u8.encode(buf);
                payload.encode(buf);
            }
        }
    }
    fn decode(buf: &mut Bytes) -> CodecResult<Self> {
        Ok(match u8::decode(buf)? {
            0 => ToCoord::Hello {
                pair: usize::decode(buf)?,
                generation: u64::decode(buf)?,
                job: u64::decode(buf)?,
            },
            1 => ToCoord::Segment {
                dest: usize::decode(buf)?,
                payload: Bytes::decode(buf)?,
            },
            2 => ToCoord::Credit {
                src: usize::decode(buf)?,
            },
            3 => ToCoord::BarrierArrive,
            4 => ToCoord::Broadcast {
                payload: Bytes::decode(buf)?,
            },
            5 => ToCoord::Distance {
                d: f64::decode(buf)?,
                has_prev: bool::decode(buf)?,
            },
            6 => ToCoord::Beat {
                iteration: usize::decode(buf)?,
                busy_secs: f64::decode(buf)?,
                d: f64::decode(buf)?,
                has_prev: bool::decode(buf)?,
            },
            7 => ToCoord::Ckpt {
                iteration: usize::decode(buf)?,
                payload: Bytes::decode(buf)?,
                hist: Vec::<(f64, bool)>::decode(buf)?,
            },
            8 => ToCoord::ReadPart {
                dir: String::decode(buf)?,
                part: usize::decode(buf)?,
            },
            9 => ToCoord::Outcome(WireOutcome::decode(buf)?),
            10 => ToCoord::Trace {
                payload: Bytes::decode(buf)?,
            },
            11 => ToCoord::Delta {
                dest: usize::decode(buf)?,
                payload: Bytes::decode(buf)?,
            },
            12 => ToCoord::DeltaStats {
                deltas: u64::decode(buf)?,
                preemptions: u64::decode(buf)?,
                checks: u64::decode(buf)?,
            },
            13 => ToCoord::PatchStats {
                keys: u64::decode(buf)?,
                bytes: u64::decode(buf)?,
                digest: u64::decode(buf)?,
            },
            14 => ToCoord::Telemetry {
                payload: Bytes::decode(buf)?,
            },
            _ => return Err(CodecError::Corrupt("unknown ToCoord tag")),
        })
    }
    fn encoded_len(&self) -> usize {
        1 + match self {
            ToCoord::Hello {
                pair,
                generation,
                job,
            } => pair.encoded_len() + generation.encoded_len() + job.encoded_len(),
            ToCoord::Segment { dest, payload } => dest.encoded_len() + payload.encoded_len(),
            ToCoord::Credit { src } => src.encoded_len(),
            ToCoord::BarrierArrive => 0,
            ToCoord::Broadcast { payload } => payload.encoded_len(),
            ToCoord::Distance { d, has_prev } => d.encoded_len() + has_prev.encoded_len(),
            ToCoord::Beat {
                iteration,
                busy_secs,
                d,
                has_prev,
            } => {
                iteration.encoded_len()
                    + busy_secs.encoded_len()
                    + d.encoded_len()
                    + has_prev.encoded_len()
            }
            ToCoord::Ckpt {
                iteration,
                payload,
                hist,
            } => iteration.encoded_len() + payload.encoded_len() + hist.encoded_len(),
            ToCoord::ReadPart { dir, part } => dir.encoded_len() + part.encoded_len(),
            ToCoord::Outcome(outcome) => outcome.encoded_len(),
            ToCoord::Trace { payload } => payload.encoded_len(),
            ToCoord::Delta { dest, payload } => dest.encoded_len() + payload.encoded_len(),
            ToCoord::DeltaStats {
                deltas,
                preemptions,
                checks,
            } => deltas.encoded_len() + preemptions.encoded_len() + checks.encoded_len(),
            ToCoord::PatchStats {
                keys,
                bytes,
                digest,
            } => keys.encoded_len() + bytes.encoded_len() + digest.encoded_len(),
            ToCoord::Telemetry { payload } => payload.encoded_len(),
        }
    }
}

impl Codec for ToWorker {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            ToWorker::Setup(setup) => {
                0u8.encode(buf);
                setup.encode(buf);
            }
            ToWorker::Segment { src, payload } => {
                1u8.encode(buf);
                src.encode(buf);
                payload.encode(buf);
            }
            ToWorker::Credit { dest } => {
                2u8.encode(buf);
                dest.encode(buf);
            }
            ToWorker::BarrierRelease => 3u8.encode(buf),
            ToWorker::BroadcastAll { parts } => {
                4u8.encode(buf);
                parts.encode(buf);
            }
            ToWorker::DistanceTotal { total, any_prev } => {
                5u8.encode(buf);
                total.encode(buf);
                any_prev.encode(buf);
            }
            ToWorker::PartData { payload } => {
                6u8.encode(buf);
                payload.encode(buf);
            }
            ToWorker::PartErr { message } => {
                7u8.encode(buf);
                message.encode(buf);
            }
            ToWorker::Poison => 8u8.encode(buf),
            ToWorker::Drain => 9u8.encode(buf),
            ToWorker::Delta { src, payload } => {
                10u8.encode(buf);
                src.encode(buf);
                payload.encode(buf);
            }
            ToWorker::Patch { bytes, digest } => {
                11u8.encode(buf);
                bytes.encode(buf);
                digest.encode(buf);
            }
        }
    }
    fn decode(buf: &mut Bytes) -> CodecResult<Self> {
        Ok(match u8::decode(buf)? {
            0 => ToWorker::Setup(Box::new(WorkerSetup::decode(buf)?)),
            1 => ToWorker::Segment {
                src: usize::decode(buf)?,
                payload: Bytes::decode(buf)?,
            },
            2 => ToWorker::Credit {
                dest: usize::decode(buf)?,
            },
            3 => ToWorker::BarrierRelease,
            4 => ToWorker::BroadcastAll {
                parts: Vec::<Bytes>::decode(buf)?,
            },
            5 => ToWorker::DistanceTotal {
                total: f64::decode(buf)?,
                any_prev: bool::decode(buf)?,
            },
            6 => ToWorker::PartData {
                payload: Bytes::decode(buf)?,
            },
            7 => ToWorker::PartErr {
                message: String::decode(buf)?,
            },
            8 => ToWorker::Poison,
            9 => ToWorker::Drain,
            10 => ToWorker::Delta {
                src: usize::decode(buf)?,
                payload: Bytes::decode(buf)?,
            },
            11 => ToWorker::Patch {
                bytes: u64::decode(buf)?,
                digest: u64::decode(buf)?,
            },
            _ => return Err(CodecError::Corrupt("unknown ToWorker tag")),
        })
    }
    fn encoded_len(&self) -> usize {
        1 + match self {
            ToWorker::Setup(setup) => setup.encoded_len(),
            ToWorker::Segment { src, payload } => src.encoded_len() + payload.encoded_len(),
            ToWorker::Credit { dest } => dest.encoded_len(),
            ToWorker::BarrierRelease => 0,
            ToWorker::BroadcastAll { parts } => parts.encoded_len(),
            ToWorker::DistanceTotal { total, any_prev } => {
                total.encoded_len() + any_prev.encoded_len()
            }
            ToWorker::PartData { payload } => payload.encoded_len(),
            ToWorker::PartErr { message } => message.encoded_len(),
            ToWorker::Poison => 0,
            ToWorker::Drain => 0,
            ToWorker::Delta { src, payload } => src.encoded_len() + payload.encoded_len(),
            ToWorker::Patch { bytes, digest } => bytes.encoded_len() + digest.encoded_len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Codec + PartialEq + std::fmt::Debug>(msg: T) {
        let encoded = msg.to_bytes();
        assert_eq!(encoded.len(), msg.encoded_len());
        let mut buf = encoded;
        let decoded = T::decode(&mut buf).unwrap();
        assert!(buf.is_empty(), "trailing bytes after {decoded:?}");
        assert_eq!(decoded, msg);
    }

    fn sample_setup() -> WorkerSetup {
        WorkerSetup {
            job: 11,
            num_tasks: 4,
            epoch: 6,
            one2all: true,
            sync: false,
            distance_threshold: Some(1e-9),
            max_iterations: 50,
            checkpoint_interval: 5,
            num_state_parts: 4,
            state_dir: "/job/state".into(),
            static_dir: "/job/static".into(),
            output_dir: "/job/out".into(),
            kills: vec![7],
            hangs: vec![],
            delays: vec![(3, 250)],
            speed: 0.5,
            crash_after: Some(9),
            accumulative: true,
            delta_batch: 16,
            check_every: 3,
            incremental: true,
        }
    }

    #[test]
    fn to_coord_round_trips() {
        round_trip(ToCoord::Hello {
            pair: 3,
            generation: 2,
            job: 17,
        });
        round_trip(ToCoord::Segment {
            dest: 1,
            payload: Bytes::from(vec![1, 2, 3]),
        });
        round_trip(ToCoord::Credit { src: 2 });
        round_trip(ToCoord::BarrierArrive);
        round_trip(ToCoord::Broadcast {
            payload: Bytes::from(vec![9; 40]),
        });
        round_trip(ToCoord::Distance {
            d: 0.125,
            has_prev: true,
        });
        round_trip(ToCoord::Beat {
            iteration: 12,
            busy_secs: 0.003,
            d: f64::INFINITY,
            has_prev: false,
        });
        round_trip(ToCoord::Ckpt {
            iteration: 10,
            payload: Bytes::from(vec![0; 128]),
            hist: vec![(1.5, false), (0.25, true)],
        });
        round_trip(ToCoord::ReadPart {
            dir: "/job/static".into(),
            part: 3,
        });
        round_trip(ToCoord::Outcome(WireOutcome {
            kind: OutcomeKind::Error,
            at_iteration: 4,
            message: "pair 1 panicked: boom".into(),
            payload: Bytes::new(),
        }));
        round_trip(ToCoord::Trace {
            payload: Bytes::from(vec![7; 56]),
        });
        round_trip(ToCoord::Delta {
            dest: 2,
            payload: Bytes::from(vec![4; 24]),
        });
        round_trip(ToCoord::DeltaStats {
            deltas: 120,
            preemptions: 7,
            checks: 1,
        });
        round_trip(ToCoord::PatchStats {
            keys: 512,
            bytes: 8192,
            digest: 0xDEAD_BEEF_CAFE_F00D,
        });
        round_trip(ToCoord::Telemetry {
            payload: Bytes::from(vec![3; 248]),
        });
    }

    #[test]
    fn to_worker_round_trips() {
        round_trip(ToWorker::Setup(Box::new(sample_setup())));
        round_trip(ToWorker::Segment {
            src: 0,
            payload: Bytes::from(vec![5; 17]),
        });
        round_trip(ToWorker::Credit { dest: 3 });
        round_trip(ToWorker::BarrierRelease);
        round_trip(ToWorker::BroadcastAll {
            parts: vec![Bytes::from(vec![1]), Bytes::new(), Bytes::from(vec![2, 3])],
        });
        round_trip(ToWorker::DistanceTotal {
            total: 42.5,
            any_prev: true,
        });
        round_trip(ToWorker::PartData {
            payload: Bytes::from(vec![8; 64]),
        });
        round_trip(ToWorker::PartErr {
            message: "block lost".into(),
        });
        round_trip(ToWorker::Poison);
        round_trip(ToWorker::Drain);
        round_trip(ToWorker::Delta {
            src: 1,
            payload: Bytes::new(),
        });
        round_trip(ToWorker::Patch {
            bytes: 8192,
            digest: 0xDEAD_BEEF_CAFE_F00D,
        });
    }

    #[test]
    fn unknown_tags_rejected() {
        let mut buf = Bytes::from(vec![250u8]);
        assert!(ToCoord::decode(&mut buf).is_err());
        let mut buf = Bytes::from(vec![250u8]);
        assert!(ToWorker::decode(&mut buf).is_err());
        let mut buf = Bytes::from(vec![99u8]);
        assert!(OutcomeKind::decode(&mut buf).is_err());
    }
}
