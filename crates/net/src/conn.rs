//! Worker-process side of the TCP transport.
//!
//! Each worker process holds exactly one persistent connection to the
//! coordinator for the lifetime of its generation. A dedicated reader
//! thread demultiplexes incoming frames into shared state (per-source
//! segment queues, credit counters, barrier releases, collective
//! results); the pair's single compute thread writes frames directly —
//! no writer lock is needed because nothing else writes.
//!
//! Backpressure: a segment may only be sent while the sender holds a
//! credit for the destination link. Credits start at the channel
//! backend's buffer size and are returned by the consumer (via the
//! coordinator) when it pops a segment, so the number of unconsumed
//! in-flight segments per link is bounded exactly like the bounded
//! crossbeam channel it replaces.
//!
//! Any reader-side error (EOF, truncation, a `Poison` frame) marks the
//! connection poisoned and wakes every waiter; blocked operations then
//! fail with [`Closed`], which the pair loop surfaces as an aborted
//! generation — the same cascade the thread backend gets from
//! channel disconnects and the poisoned barrier.

use crate::frame::{FrameReader, FrameWriter};
use crate::policy::NetPolicy;
use crate::proto::{ToCoord, ToWorker, WireOutcome, WorkerSetup};
use crate::transport::{Closed, Transport};
use crate::NetError;
use bytes::Bytes;
use imr_records::Codec;
use std::collections::VecDeque;
use std::io::{BufWriter, Write};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Instant;

struct ConnState {
    /// Per-source queues of received shuffle segments.
    queues: Vec<VecDeque<Bytes>>,
    /// Per-source queues of received delta segments (barrier-free
    /// accumulative mode). A run uses either the shuffle queues or the
    /// delta queues, never both, so delta frames share the same credit
    /// window.
    delta_queues: Vec<VecDeque<Bytes>>,
    /// Send credits per destination link.
    credits: Vec<usize>,
    /// Count of barrier releases seen (workers strictly alternate
    /// arrive/release, so a running count is sufficient).
    releases: u64,
    broadcast: Option<Vec<Bytes>>,
    distance: Option<(f64, bool)>,
    part: Option<Result<Bytes, String>>,
    /// Incremental-mode patch expectation from the coordinator
    /// (`(bytes, digest)` of our epoch-0 warm-start part).
    patch: Option<(u64, u64)>,
    poisoned: bool,
    /// The coordinator asked for an orderly shutdown ([`ToWorker::Drain`]).
    /// Implies `poisoned` so every waiter unwinds, but lets the worker
    /// exit successfully instead of reporting an abort.
    drained: bool,
}

struct ConnShared {
    state: Mutex<ConnState>,
    cv: Condvar,
}

/// A worker's persistent connection to the coordinator.
pub struct WorkerConn {
    stream: TcpStream,
    writer: FrameWriter<BufWriter<TcpStream>>,
    shared: Arc<ConnShared>,
    reader: Option<JoinHandle<()>>,
    consumed_releases: u64,
}

impl WorkerConn {
    /// [`WorkerConn::connect_with_policy`] under the default
    /// [`NetPolicy`].
    pub fn connect(
        addr: impl ToSocketAddrs,
        pair: usize,
        generation: u64,
        job: u64,
        buffer: usize,
    ) -> Result<(WorkerConn, WorkerSetup), NetError> {
        WorkerConn::connect_with_policy(addr, pair, generation, job, buffer, &NetPolicy::default())
    }

    /// Connect to the coordinator, introduce ourselves as `pair` of
    /// `generation` running `job`, and wait for the [`WorkerSetup`]
    /// frame. `buffer` is the per-link credit allowance (the channel
    /// backend's buffer size).
    ///
    /// The TCP connect itself is retried with the policy's jittered
    /// exponential backoff (salted by pair and generation so a respawned
    /// fleet de-synchronizes) until `retry_budget` retries or the
    /// `connect_timeout` window is spent.
    pub fn connect_with_policy(
        addr: impl ToSocketAddrs,
        pair: usize,
        generation: u64,
        job: u64,
        buffer: usize,
        policy: &NetPolicy,
    ) -> Result<(WorkerConn, WorkerSetup), NetError> {
        let salt = (pair as u64) ^ generation.rotate_left(32);
        let started = Instant::now();
        let mut attempt = 0u32;
        let stream = loop {
            match TcpStream::connect(&addr) {
                Ok(stream) => break stream,
                Err(e) => {
                    attempt += 1;
                    if attempt > policy.retry_budget || started.elapsed() >= policy.connect_timeout
                    {
                        return Err(NetError::Io(format!(
                            "connect retry budget ({}) exhausted: {e}",
                            policy.retry_budget
                        )));
                    }
                    std::thread::sleep(policy.backoff_delay(attempt - 1, salt));
                }
            }
        };
        stream.set_nodelay(true)?;
        // The preamble goes out buffered with the hello.
        let mut writer = FrameWriter::new(BufWriter::new(stream.try_clone()?))?;
        let hello = ToCoord::Hello {
            pair,
            generation,
            job,
        };
        writer.write(&hello.to_bytes())?;
        writer.get_mut().flush()?;

        // The setup frame always comes first; guard the handshake with
        // a timeout so a wedged coordinator cannot hang us forever. The
        // setup only arrives once *all* workers have connected, so the
        // wait shares the coordinator's accept window.
        let read_half = stream.try_clone()?;
        read_half.set_read_timeout(Some(policy.connect_timeout))?;
        let mut reader = FrameReader::new(read_half);
        reader.expect_preamble()?;
        let mut first = reader.read()?;
        reader.get_mut().set_read_timeout(None)?;
        let setup = match ToWorker::decode(&mut first)? {
            ToWorker::Setup(setup) => *setup,
            other => {
                return Err(NetError::Protocol(format!(
                    "expected setup frame, got {other:?}"
                )))
            }
        };

        let n = setup.num_tasks;
        let shared = Arc::new(ConnShared {
            state: Mutex::new(ConnState {
                queues: (0..n).map(|_| VecDeque::new()).collect(),
                delta_queues: (0..n).map(|_| VecDeque::new()).collect(),
                credits: vec![buffer; n],
                releases: 0,
                broadcast: None,
                distance: None,
                part: None,
                patch: None,
                poisoned: false,
                drained: false,
            }),
            cv: Condvar::new(),
        });
        let reader_shared = Arc::clone(&shared);
        let reader = std::thread::spawn(move || reader_loop(reader, reader_shared));
        Ok((
            WorkerConn {
                stream,
                writer,
                shared,
                reader: Some(reader),
                consumed_releases: 0,
            },
            setup,
        ))
    }

    fn write(&mut self, msg: &ToCoord) -> Result<(), Closed> {
        self.writer
            .write(&msg.to_bytes())
            .and_then(|()| self.writer.get_mut().flush().map_err(NetError::from))
            .map_err(|_| Closed)
    }

    fn lock(&self) -> MutexGuard<'_, ConnState> {
        self.shared
            .state
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Block until `f` yields a value; fail with [`Closed`] if the
    /// connection is poisoned and `f` still has nothing (so already
    /// delivered data is always drained first).
    fn wait_until<T>(&self, mut f: impl FnMut(&mut ConnState) -> Option<T>) -> Result<T, Closed> {
        let mut state = self.lock();
        loop {
            if let Some(value) = f(&mut state) {
                return Ok(value);
            }
            if state.poisoned {
                return Err(Closed);
            }
            state = self
                .shared
                .cv
                .wait(state)
                .unwrap_or_else(|poison| poison.into_inner());
        }
    }

    /// Has the coordinator poisoned or dropped the connection?
    pub fn is_poisoned(&self) -> bool {
        self.lock().poisoned
    }

    /// Has the coordinator asked for an orderly shutdown (a
    /// [`ToWorker::Drain`] frame, or a clean disconnect after one)?
    pub fn is_drained(&self) -> bool {
        self.lock().drained
    }

    /// Park until the connection is poisoned (scripted hang).
    pub fn block_until_poisoned(&self) {
        let _ = self.wait_until(|_| None::<()>);
    }

    /// One round of the global synchronization barrier. Like the
    /// thread backend's `FaultBarrier`, a release that was already won
    /// still counts even if poison lands afterwards.
    pub fn barrier_wait(&mut self) -> Result<(), Closed> {
        self.write(&ToCoord::BarrierArrive)?;
        let target = self.consumed_releases + 1;
        self.wait_until(|s| (s.releases >= target).then_some(()))?;
        self.consumed_releases = target;
        Ok(())
    }

    /// Contribute our encoded state part and receive all pairs' parts
    /// in task order (one2all state exchange).
    pub fn exchange_broadcast(&mut self, mine: Bytes) -> Result<Vec<Bytes>, Closed> {
        self.write(&ToCoord::Broadcast { payload: mine })?;
        self.wait_until(|s| s.broadcast.take())
    }

    /// Contribute our local distance and receive the task-order total.
    pub fn exchange_distance(&mut self, d: f64, has_prev: bool) -> Result<(f64, bool), Closed> {
        self.write(&ToCoord::Distance { d, has_prev })?;
        self.wait_until(|s| s.distance.take())
    }

    /// Read DFS file `<dir>/part-<part>` through the coordinator.
    pub fn read_part(&mut self, dir: &str, part: usize) -> Result<Bytes, NetError> {
        self.write(&ToCoord::ReadPart {
            dir: dir.to_string(),
            part,
        })
        .map_err(|_| NetError::Closed)?;
        match self.wait_until(|s| s.part.take()) {
            Ok(Ok(payload)) => Ok(payload),
            Ok(Err(message)) => Err(NetError::Protocol(message)),
            Err(Closed) => Err(NetError::Closed),
        }
    }

    /// Ship a checkpoint body plus the distance history through
    /// `iteration`; the coordinator persists both atomically.
    /// Fire-and-forget: in-order delivery means the coordinator sees it
    /// before our EOF, so its record of our checkpoint progress is
    /// authoritative even if we die right after sending.
    pub fn write_checkpoint(
        &mut self,
        iteration: usize,
        payload: Bytes,
        hist: Vec<(f64, bool)>,
    ) -> Result<(), Closed> {
        self.write(&ToCoord::Ckpt {
            iteration,
            payload,
            hist,
        })
    }

    /// Publish a heartbeat for the coordinator-side progress board.
    pub fn beat(&mut self, iteration: usize, busy_secs: f64, d: f64, has_prev: bool) {
        let _ = self.write(&ToCoord::Beat {
            iteration,
            busy_secs,
            d,
            has_prev,
        });
    }

    /// Ship a batch of encoded trace events (see
    /// `imr_trace::encode_events`). Best-effort, like heartbeats: trace
    /// loss on a dying connection is acceptable, and in-order delivery
    /// means a batch sent before the outcome frame always precedes it.
    pub fn send_trace(&mut self, payload: Bytes) {
        let _ = self.write(&ToCoord::Trace { payload });
    }

    /// Ship a batch of encoded telemetry samples + histogram deltas
    /// (see `imr_telemetry::encode_batch`). Best-effort, like trace
    /// batches.
    pub fn send_telemetry(&mut self, payload: Bytes) {
        let _ = self.write(&ToCoord::Telemetry { payload });
    }

    /// Report our terminal status. Best-effort once poisoned.
    pub fn send_outcome(&mut self, outcome: WireOutcome) {
        let _ = self.write(&ToCoord::Outcome(outcome));
    }

    /// Send a delta segment to pair `dest` (barrier-free accumulative
    /// mode). Same credit discipline as shuffle segments.
    pub fn send_delta(&mut self, dest: usize, seg: Bytes) -> Result<(), Closed> {
        self.wait_until(|s| {
            if s.credits[dest] > 0 {
                s.credits[dest] -= 1;
                Some(())
            } else {
                None
            }
        })?;
        self.write(&ToCoord::Delta { dest, payload: seg })
    }

    /// Pop the next delta segment from pair `src`, blocking until one
    /// arrives; returns the producer's credit like [`Transport::recv`].
    pub fn recv_delta(&mut self, src: usize) -> Result<Bytes, Closed> {
        let seg = self.wait_until(|s| s.delta_queues[src].pop_front())?;
        self.write(&ToCoord::Credit { src })?;
        Ok(seg)
    }

    /// Report per-check accumulative-mode counters; the coordinator
    /// folds them into the job's real metrics registry. Best-effort,
    /// like heartbeats.
    pub fn send_delta_stats(&mut self, deltas: u64, preemptions: u64, checks: u64) {
        let _ = self.write(&ToCoord::DeltaStats {
            deltas,
            preemptions,
            checks,
        });
    }

    /// Block until the coordinator's incremental-mode [`ToWorker::Patch`]
    /// expectation arrives; returns its `(bytes, digest)`.
    pub fn wait_patch(&mut self) -> Result<(u64, u64), Closed> {
        self.wait_until(|s| s.patch.take())
    }

    /// Echo what we actually restored from the warm-start part so the
    /// coordinator can verify the plan arrived intact.
    pub fn send_patch_stats(&mut self, keys: u64, bytes: u64, digest: u64) {
        let _ = self.write(&ToCoord::PatchStats {
            keys,
            bytes,
            digest,
        });
    }
}

impl Transport for WorkerConn {
    fn send(&mut self, dest: usize, seg: Bytes) -> Result<(), Closed> {
        self.wait_until(|s| {
            if s.credits[dest] > 0 {
                s.credits[dest] -= 1;
                Some(())
            } else {
                None
            }
        })?;
        self.write(&ToCoord::Segment { dest, payload: seg })
    }

    fn recv(&mut self, src: usize) -> Result<Bytes, Closed> {
        let seg = self.wait_until(|s| s.queues[src].pop_front())?;
        // Tell the producer (via the coordinator) that a buffer slot
        // freed up.
        self.write(&ToCoord::Credit { src })?;
        Ok(seg)
    }
}

impl Drop for WorkerConn {
    fn drop(&mut self) {
        let _ = self.writer.get_mut().flush();
        let _ = self.stream.shutdown(Shutdown::Both);
        if let Some(handle) = self.reader.take() {
            let _ = handle.join();
        }
    }
}

fn reader_loop(mut reader: FrameReader<TcpStream>, shared: Arc<ConnShared>) {
    while let Ok(msg) = reader
        .read()
        .and_then(|mut b| Ok(ToWorker::decode(&mut b)?))
    {
        let mut state = shared
            .state
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        match msg {
            ToWorker::Segment { src, payload } => {
                if src < state.queues.len() {
                    state.queues[src].push_back(payload);
                }
            }
            ToWorker::Delta { src, payload } => {
                if src < state.delta_queues.len() {
                    state.delta_queues[src].push_back(payload);
                }
            }
            ToWorker::Credit { dest } => {
                if dest < state.credits.len() {
                    state.credits[dest] += 1;
                }
            }
            ToWorker::BarrierRelease => state.releases += 1,
            ToWorker::BroadcastAll { parts } => state.broadcast = Some(parts),
            ToWorker::DistanceTotal { total, any_prev } => state.distance = Some((total, any_prev)),
            ToWorker::PartData { payload } => state.part = Some(Ok(payload)),
            ToWorker::PartErr { message } => state.part = Some(Err(message)),
            ToWorker::Patch { bytes, digest } => state.patch = Some((bytes, digest)),
            ToWorker::Poison => {
                state.poisoned = true;
                // Keep reading so the coordinator's writes never block
                // on a full socket buffer during teardown.
            }
            ToWorker::Drain => {
                state.drained = true;
                state.poisoned = true;
            }
            ToWorker::Setup(_) => {}
        }
        drop(state);
        shared.cv.notify_all();
    }
    let mut state = shared
        .state
        .lock()
        .unwrap_or_else(|poison| poison.into_inner());
    state.poisoned = true;
    drop(state);
    shared.cv.notify_all();
}
