//! Length-prefixed binary framing over any byte stream.
//!
//! Wire format: `[u32 big-endian payload length][payload bytes]`. A
//! frame length above [`MAX_FRAME`] is rejected before any allocation,
//! so a corrupt prefix cannot balloon memory. EOF exactly at a frame
//! boundary is a clean [`NetError::Closed`]; EOF inside the prefix or
//! body is reported as truncation.

use crate::NetError;
use bytes::Bytes;
use std::io::{ErrorKind, Read, Write};

/// Maximum payload size accepted on the wire (64 MiB).
pub const MAX_FRAME: usize = 1 << 26;

/// Write one length-prefixed frame. The caller flushes.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), NetError> {
    if payload.len() > MAX_FRAME {
        return Err(NetError::FrameTooLarge(payload.len()));
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    Ok(())
}

/// Read one length-prefixed frame, blocking until it is complete.
pub fn read_frame(r: &mut impl Read) -> Result<Bytes, NetError> {
    let mut prefix = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut prefix[filled..]) {
            Ok(0) if filled == 0 => return Err(NetError::Closed),
            Ok(0) => {
                return Err(NetError::Io(
                    "connection truncated inside frame length".into(),
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    let len = u32::from_be_bytes(prefix) as usize;
    if len > MAX_FRAME {
        return Err(NetError::FrameTooLarge(len));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(|e| {
        if e.kind() == ErrorKind::UnexpectedEof {
            NetError::Io("connection truncated inside frame body".into())
        } else {
            NetError::Io(e.to_string())
        }
    })?;
    Ok(Bytes::from(payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, &[0xAB; 1000]).unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap().as_slice(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().as_slice(), b"");
        assert_eq!(read_frame(&mut r).unwrap().as_slice(), &[0xAB; 1000][..]);
        assert!(matches!(read_frame(&mut r), Err(NetError::Closed)));
    }

    #[test]
    fn oversized_prefix_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_be_bytes());
        let mut r = Cursor::new(buf);
        match read_frame(&mut r) {
            Err(NetError::FrameTooLarge(len)) => assert_eq!(len, u32::MAX as usize),
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn truncation_inside_prefix_is_not_clean_close() {
        let mut r = Cursor::new(vec![0u8, 0]);
        match read_frame(&mut r) {
            Err(NetError::Io(msg)) => assert!(msg.contains("frame length")),
            other => panic!("expected Io truncation, got {other:?}"),
        }
    }

    #[test]
    fn truncation_inside_body_is_not_clean_close() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&10u32.to_be_bytes());
        buf.extend_from_slice(b"abc");
        let mut r = Cursor::new(buf);
        match read_frame(&mut r) {
            Err(NetError::Io(msg)) => assert!(msg.contains("frame body")),
            other => panic!("expected Io truncation, got {other:?}"),
        }
    }

    /// A reader that dribbles one byte per call, exercising the
    /// partial-read path for both the prefix and the body.
    struct OneByte<R: Read>(R);
    impl<R: Read> Read for OneByte<R> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let take = buf.len().min(1);
            self.0.read(&mut buf[..take])
        }
    }

    #[test]
    fn partial_reads_reassemble() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"fragmented payload").unwrap();
        let mut r = OneByte(Cursor::new(buf));
        assert_eq!(
            read_frame(&mut r).unwrap().as_slice(),
            b"fragmented payload"
        );
    }

    #[test]
    fn oversized_write_rejected() {
        struct NullSink;
        impl Write for NullSink {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let huge = vec![0u8; MAX_FRAME + 1];
        assert!(matches!(
            write_frame(&mut NullSink, &huge),
            Err(NetError::FrameTooLarge(_))
        ));
    }
}
