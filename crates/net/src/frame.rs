//! Hardened length-prefixed binary framing over any byte stream
//! (wire format v2).
//!
//! Each direction of a connection starts with an 8-byte preamble —
//! the magic `b"IMRW"` followed by the big-endian [`WIRE_VERSION`] —
//! so mismatched peers fail fast and loudly instead of decoding
//! garbage: a v2 reader facing a v1 peer sees a bad magic
//! ([`NetError::Version`]), while a v1 reader facing a v2 peer reads
//! the magic as an impossible frame length and rejects it before any
//! allocation.
//!
//! Frames are `[u32 BE payload length][u32 BE CRC32][payload]`. The
//! CRC covers the direction's implicit frame sequence number (a `u64`
//! starting at 0 after the preamble, never on the wire) followed by
//! the payload, so *any* single-frame damage is a typed, prompt
//! failure on the receiver:
//!
//! * a flipped bit in CRC or payload → CRC mismatch →
//!   [`NetError::Corrupt`];
//! * a dropped frame → the next frame arrives with a future sequence
//!   number → CRC mismatch → [`NetError::Corrupt`];
//! * a duplicated frame → the second copy carries a stale sequence
//!   number → CRC mismatch → [`NetError::Corrupt`];
//! * a frame length above [`MAX_FRAME`] is rejected before any
//!   allocation, so a corrupt prefix cannot balloon memory;
//! * EOF exactly at a frame boundary is a clean [`NetError::Closed`];
//!   EOF inside the header or body is reported as truncation.
//!
//! A corrupt connection is torn down by the caller and flows into the
//! supervisor's reconnect-with-replay path; framing never resyncs
//! in-stream.

use crate::crc::Crc32;
use crate::NetError;
use bytes::Bytes;
use std::io::{ErrorKind, Read, Write};

/// Maximum payload size accepted on the wire (64 MiB).
pub const MAX_FRAME: usize = 1 << 26;

/// Per-direction stream magic, sent once before any frame.
pub const WIRE_MAGIC: [u8; 4] = *b"IMRW";

/// Wire protocol version negotiated by the preamble.
pub const WIRE_VERSION: u32 = 2;

/// Bytes of the per-direction preamble (magic + version).
pub const PREAMBLE_LEN: usize = 8;

/// Bytes of the per-frame header (length + CRC).
pub const HEADER_LEN: usize = 8;

/// The 8-byte preamble a sender opens its direction with.
pub fn preamble() -> [u8; PREAMBLE_LEN] {
    let mut p = [0u8; PREAMBLE_LEN];
    p[..4].copy_from_slice(&WIRE_MAGIC);
    p[4..].copy_from_slice(&WIRE_VERSION.to_be_bytes());
    p
}

/// The CRC a frame with sequence number `seq` and `payload` carries.
pub fn frame_crc(seq: u64, payload: &[u8]) -> u32 {
    Crc32::new()
        .update(&seq.to_be_bytes())
        .update(payload)
        .finish()
}

/// Encodes one complete frame (header + payload) for sequence number
/// `seq`. The chaos injector uses this to damage an encoded frame
/// before writing it raw; the normal path writes header and payload
/// separately without the extra copy.
pub fn encode_frame(seq: u64, payload: &[u8]) -> Result<Vec<u8>, NetError> {
    if payload.len() > MAX_FRAME {
        return Err(NetError::FrameTooLarge(payload.len()));
    }
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(&frame_crc(seq, payload).to_be_bytes());
    out.extend_from_slice(payload);
    Ok(out)
}

/// The sending half of one direction: writes the preamble up front,
/// then frames with consecutive implicit sequence numbers.
pub struct FrameWriter<W: Write> {
    inner: W,
    seq: u64,
}

impl<W: Write> FrameWriter<W> {
    /// Wraps `inner`, writing (not flushing) the preamble immediately.
    pub fn new(mut inner: W) -> Result<FrameWriter<W>, NetError> {
        inner.write_all(&preamble())?;
        Ok(FrameWriter { inner, seq: 0 })
    }

    /// Writes one frame. The caller flushes.
    pub fn write(&mut self, payload: &[u8]) -> Result<(), NetError> {
        if payload.len() > MAX_FRAME {
            return Err(NetError::FrameTooLarge(payload.len()));
        }
        self.inner
            .write_all(&(payload.len() as u32).to_be_bytes())?;
        self.inner
            .write_all(&frame_crc(self.seq, payload).to_be_bytes())?;
        self.inner.write_all(payload)?;
        self.seq += 1;
        Ok(())
    }

    /// Encodes the next frame without writing it, advancing the
    /// sequence number as if it had been sent. The chaos injector
    /// mangles these bytes and writes them through
    /// [`FrameWriter::get_mut`].
    pub fn encode_next(&mut self, payload: &[u8]) -> Result<Vec<u8>, NetError> {
        let bytes = encode_frame(self.seq, payload)?;
        self.seq += 1;
        Ok(bytes)
    }

    /// Advances the sequence number without writing anything — a
    /// chaos-injected silent drop. The receiver detects the gap on
    /// the next delivered frame.
    pub fn skip(&mut self) {
        self.seq += 1;
    }

    /// Next frame's sequence number.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The wrapped writer (for flushing or raw chaos writes).
    pub fn get_mut(&mut self) -> &mut W {
        &mut self.inner
    }
}

/// The receiving half of one direction: checks the preamble, then
/// reads frames and verifies each against the implicit sequence
/// number.
pub struct FrameReader<R: Read> {
    inner: R,
    seq: u64,
}

impl<R: Read> FrameReader<R> {
    /// Wraps `inner`; call [`FrameReader::expect_preamble`] before the
    /// first [`FrameReader::read`].
    pub fn new(inner: R) -> FrameReader<R> {
        FrameReader { inner, seq: 0 }
    }

    /// Rebuilds a reader from [`FrameReader::into_parts`], e.g. after
    /// re-wrapping the underlying stream.
    pub fn from_parts(inner: R, seq: u64) -> FrameReader<R> {
        FrameReader { inner, seq }
    }

    /// The wrapped reader and the next expected sequence number.
    pub fn into_parts(self) -> (R, u64) {
        (self.inner, self.seq)
    }

    /// The wrapped reader.
    pub fn get_ref(&self) -> &R {
        &self.inner
    }

    /// The wrapped reader, mutably (e.g. to adjust socket timeouts).
    pub fn get_mut(&mut self) -> &mut R {
        &mut self.inner
    }

    /// Reads and validates the peer's preamble. A wrong magic is a
    /// [`NetError::Version`] (the peer speaks a pre-preamble protocol
    /// or something else entirely); a right magic with a wrong
    /// version reports both versions.
    pub fn expect_preamble(&mut self) -> Result<(), NetError> {
        let mut p = [0u8; PREAMBLE_LEN];
        read_full(&mut self.inner, &mut p, "stream preamble")?;
        if p[..4] != WIRE_MAGIC {
            return Err(NetError::Version(format!(
                "bad wire magic {:02x?} (expected {:02x?}): peer speaks an \
                 incompatible or pre-v2 protocol",
                &p[..4],
                WIRE_MAGIC
            )));
        }
        let version = u32::from_be_bytes([p[4], p[5], p[6], p[7]]);
        if version != WIRE_VERSION {
            return Err(NetError::Version(format!(
                "peer speaks wire version {version}, this build speaks {WIRE_VERSION}"
            )));
        }
        Ok(())
    }

    /// Reads one frame, blocking until it is complete, and verifies
    /// its CRC against the expected sequence number.
    pub fn read(&mut self) -> Result<Bytes, NetError> {
        let mut header = [0u8; HEADER_LEN];
        read_full(&mut self.inner, &mut header, "frame header")?;
        let len = u32::from_be_bytes([header[0], header[1], header[2], header[3]]) as usize;
        let wire_crc = u32::from_be_bytes([header[4], header[5], header[6], header[7]]);
        if len > MAX_FRAME {
            return Err(NetError::FrameTooLarge(len));
        }
        let mut payload = vec![0u8; len];
        self.inner.read_exact(&mut payload).map_err(|e| {
            if e.kind() == ErrorKind::UnexpectedEof {
                NetError::Io("connection truncated inside frame body".into())
            } else {
                NetError::Io(e.to_string())
            }
        })?;
        let seq = self.seq;
        if frame_crc(seq, &payload) != wire_crc {
            return Err(NetError::Corrupt { seq });
        }
        self.seq += 1;
        Ok(Bytes::from(payload))
    }
}

/// Fills `buf` completely. EOF before the first byte is a clean
/// [`NetError::Closed`]; EOF mid-way is truncation named after `what`.
fn read_full(r: &mut impl Read, buf: &mut [u8], what: &str) -> Result<(), NetError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Err(NetError::Closed),
            Ok(0) => {
                return Err(NetError::Io(format!("connection truncated inside {what}")));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    /// A connected writer/reader pair over an in-memory buffer.
    fn round_trip_setup(payloads: &[&[u8]]) -> FrameReader<Cursor<Vec<u8>>> {
        let mut w = FrameWriter::new(Vec::new()).unwrap();
        for p in payloads {
            w.write(p).unwrap();
        }
        let buf = std::mem::take(w.get_mut());
        let mut r = FrameReader::new(Cursor::new(buf));
        r.expect_preamble().unwrap();
        r
    }

    #[test]
    fn round_trip() {
        let mut r = round_trip_setup(&[b"hello", b"", &[0xAB; 1000]]);
        assert_eq!(r.read().unwrap().as_slice(), b"hello");
        assert_eq!(r.read().unwrap().as_slice(), b"");
        assert_eq!(r.read().unwrap().as_slice(), &[0xAB; 1000][..]);
        assert!(matches!(r.read(), Err(NetError::Closed)));
    }

    #[test]
    fn v1_style_stream_fails_the_version_check() {
        // A v1 peer opens with a length prefix, not the magic.
        let mut buf = Vec::new();
        buf.extend_from_slice(&5u32.to_be_bytes());
        buf.extend_from_slice(b"hello");
        let mut r = FrameReader::new(Cursor::new(buf));
        match r.expect_preamble() {
            Err(NetError::Version(msg)) => assert!(msg.contains("magic")),
            other => panic!("expected Version error, got {other:?}"),
        }
    }

    #[test]
    fn wrong_version_reports_both_versions() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&WIRE_MAGIC);
        buf.extend_from_slice(&7u32.to_be_bytes());
        let mut r = FrameReader::new(Cursor::new(buf));
        match r.expect_preamble() {
            Err(NetError::Version(msg)) => {
                assert!(msg.contains('7') && msg.contains('2'), "got: {msg}")
            }
            other => panic!("expected Version error, got {other:?}"),
        }
    }

    #[test]
    fn v2_preamble_read_as_v1_length_is_rejected_before_allocation() {
        // The other direction of the cross-version handshake: a v1
        // reader interprets the magic as a frame length far above
        // MAX_FRAME, so it fails fast without allocating.
        let as_len = u32::from_be_bytes(WIRE_MAGIC) as usize;
        assert!(as_len > MAX_FRAME);
    }

    #[test]
    fn oversized_prefix_rejected_before_allocation() {
        let mut w = FrameWriter::new(Vec::new()).unwrap();
        w.write(b"x").unwrap();
        let mut buf = std::mem::take(w.get_mut());
        // Overwrite the first frame's length with u32::MAX.
        buf[PREAMBLE_LEN..PREAMBLE_LEN + 4].copy_from_slice(&u32::MAX.to_be_bytes());
        let mut r = FrameReader::new(Cursor::new(buf));
        r.expect_preamble().unwrap();
        match r.read() {
            Err(NetError::FrameTooLarge(len)) => assert_eq!(len, u32::MAX as usize),
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn truncation_inside_header_is_not_clean_close() {
        let mut w = FrameWriter::new(Vec::new()).unwrap();
        w.write(b"payload").unwrap();
        let mut buf = std::mem::take(w.get_mut());
        buf.truncate(PREAMBLE_LEN + 3);
        let mut r = FrameReader::new(Cursor::new(buf));
        r.expect_preamble().unwrap();
        match r.read() {
            Err(NetError::Io(msg)) => assert!(msg.contains("frame header")),
            other => panic!("expected Io truncation, got {other:?}"),
        }
    }

    #[test]
    fn truncation_inside_body_is_not_clean_close() {
        let mut w = FrameWriter::new(Vec::new()).unwrap();
        w.write(b"0123456789").unwrap();
        let mut buf = std::mem::take(w.get_mut());
        buf.truncate(buf.len() - 7);
        let mut r = FrameReader::new(Cursor::new(buf));
        r.expect_preamble().unwrap();
        match r.read() {
            Err(NetError::Io(msg)) => assert!(msg.contains("frame body")),
            other => panic!("expected Io truncation, got {other:?}"),
        }
    }

    #[test]
    fn truncated_preamble_is_reported() {
        let mut r = FrameReader::new(Cursor::new(vec![b'I', b'M']));
        match r.expect_preamble() {
            Err(NetError::Io(msg)) => assert!(msg.contains("preamble")),
            other => panic!("expected Io truncation, got {other:?}"),
        }
        let mut empty = FrameReader::new(Cursor::new(Vec::<u8>::new()));
        assert!(matches!(empty.expect_preamble(), Err(NetError::Closed)));
    }

    /// A reader that dribbles one byte per call, exercising the
    /// partial-read path for the preamble, header and body.
    struct OneByte<R: Read>(R);
    impl<R: Read> Read for OneByte<R> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let take = buf.len().min(1);
            self.0.read(&mut buf[..take])
        }
    }

    #[test]
    fn partial_reads_reassemble() {
        let mut w = FrameWriter::new(Vec::new()).unwrap();
        w.write(b"fragmented payload").unwrap();
        let buf = std::mem::take(w.get_mut());
        let mut r = FrameReader::new(OneByte(Cursor::new(buf)));
        r.expect_preamble().unwrap();
        assert_eq!(r.read().unwrap().as_slice(), b"fragmented payload");
    }

    #[test]
    fn oversized_write_rejected() {
        struct NullSink;
        impl Write for NullSink {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let huge = vec![0u8; MAX_FRAME + 1];
        let mut w = FrameWriter::new(NullSink).unwrap();
        assert!(matches!(w.write(&huge), Err(NetError::FrameTooLarge(_))));
        assert_eq!(w.seq(), 0, "a rejected frame must not advance the sequence");
        assert!(matches!(
            encode_frame(0, &huge),
            Err(NetError::FrameTooLarge(_))
        ));
    }

    #[test]
    fn any_single_bit_flip_past_the_length_is_detected() {
        // Flip every bit of the CRC and payload of one frame in turn:
        // each flip must surface as Corrupt on that frame. (Length
        // bits are excluded: the chaos injector never touches them,
        // because a wrong length desynchronizes instead of failing
        // fast — see chaos::FrameAction::Corrupt.)
        let payload = b"integrity matters";
        let mut w = FrameWriter::new(Vec::new()).unwrap();
        w.write(payload).unwrap();
        let clean = std::mem::take(w.get_mut());
        let first_flippable = PREAMBLE_LEN + 4; // skip preamble + length
        for byte in first_flippable..clean.len() {
            for bit in 0..8 {
                let mut bad = clean.clone();
                bad[byte] ^= 1 << bit;
                let mut r = FrameReader::new(Cursor::new(bad));
                r.expect_preamble().unwrap();
                match r.read() {
                    Err(NetError::Corrupt { seq: 0 }) => {}
                    other => panic!("flip at byte {byte} bit {bit}: got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn dropped_frame_is_detected_as_corrupt() {
        let mut w = FrameWriter::new(Vec::new()).unwrap();
        w.skip(); // frame 0 silently dropped
        w.write(b"frame one").unwrap();
        let buf = std::mem::take(w.get_mut());
        let mut r = FrameReader::new(Cursor::new(buf));
        r.expect_preamble().unwrap();
        assert!(matches!(r.read(), Err(NetError::Corrupt { seq: 0 })));
    }

    #[test]
    fn duplicated_frame_is_detected_as_corrupt() {
        let mut w = FrameWriter::new(Vec::new()).unwrap();
        let encoded = w.encode_next(b"dup me").unwrap();
        w.get_mut().extend_from_slice(&encoded);
        w.get_mut().extend_from_slice(&encoded);
        let buf = std::mem::take(w.get_mut());
        let mut r = FrameReader::new(Cursor::new(buf));
        r.expect_preamble().unwrap();
        assert_eq!(r.read().unwrap().as_slice(), b"dup me");
        assert!(matches!(r.read(), Err(NetError::Corrupt { seq: 1 })));
    }

    #[test]
    fn boundary_frame_at_exactly_max_frame_round_trips() {
        let payload = vec![0x5Au8; MAX_FRAME];
        let mut w = FrameWriter::new(Vec::new()).unwrap();
        w.write(&payload).unwrap();
        let buf = std::mem::take(w.get_mut());
        let mut r = FrameReader::new(Cursor::new(buf));
        r.expect_preamble().unwrap();
        let got = r.read().unwrap();
        assert_eq!(got.len(), MAX_FRAME);
        assert_eq!(got.as_slice(), payload.as_slice());
    }

    #[test]
    fn sequence_continues_across_parts() {
        let mut w = FrameWriter::new(Vec::new()).unwrap();
        w.write(b"one").unwrap();
        w.write(b"two").unwrap();
        let buf = std::mem::take(w.get_mut());
        let mut r = FrameReader::new(Cursor::new(buf));
        r.expect_preamble().unwrap();
        assert_eq!(r.read().unwrap().as_slice(), b"one");
        let (cursor, seq) = r.into_parts();
        assert_eq!(seq, 1);
        let mut r2 = FrameReader::from_parts(cursor, seq);
        assert_eq!(r2.read().unwrap().as_slice(), b"two");
    }
}
