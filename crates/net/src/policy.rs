//! Unified retry/backoff/timeout policy for the TCP transport.
//!
//! Before this module, every layer carried its own magic constants: the
//! coordinator's connect deadline, the worker's handshake read timeout,
//! the teardown grace, and a hardcoded two-strike retry backstop in the
//! supervisor. [`NetPolicy`] gathers them into one struct that is
//! threaded through `IterConfig` into the coordinator hub and exported
//! to worker processes through environment variables
//! ([`NetPolicy::env_vars`] / [`NetPolicy::from_env`]), so a whole
//! fleet — coordinator and spawned workers — always agrees on one
//! policy, and fault-injection tests can shrink every timeout at once.
//!
//! Backoff is exponential with *deterministic* jitter: the delay for
//! attempt `k` is `backoff_base * 2^k` capped at `backoff_max`, then
//! scaled into `[delay/2, delay]` by a splitmix64 hash of a caller salt
//! and the attempt number. Two runs with the same salts sleep the same
//! schedule — retries stay reproducible, but a thundering herd of
//! workers (distinct salts) still de-synchronizes.

use std::time::Duration;

/// Environment variable names understood by [`NetPolicy::from_env`],
/// in field order.
pub const ENV_CONNECT_TIMEOUT_MS: &str = "IMR_NET_CONNECT_TIMEOUT_MS";
/// See [`ENV_CONNECT_TIMEOUT_MS`].
pub const ENV_HANDSHAKE_TIMEOUT_MS: &str = "IMR_NET_HANDSHAKE_TIMEOUT_MS";
/// See [`ENV_CONNECT_TIMEOUT_MS`].
pub const ENV_TEARDOWN_GRACE_MS: &str = "IMR_NET_TEARDOWN_GRACE_MS";
/// See [`ENV_CONNECT_TIMEOUT_MS`].
pub const ENV_RETRY_BUDGET: &str = "IMR_NET_RETRY_BUDGET";
/// See [`ENV_CONNECT_TIMEOUT_MS`].
pub const ENV_BACKOFF_BASE_MS: &str = "IMR_NET_BACKOFF_BASE_MS";
/// See [`ENV_CONNECT_TIMEOUT_MS`].
pub const ENV_BACKOFF_MAX_MS: &str = "IMR_NET_BACKOFF_MAX_MS";

/// One place for every network deadline, retry budget and backoff
/// parameter the TCP transport uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetPolicy {
    /// How long the whole connect phase may take: the coordinator
    /// waits this long for all workers of a generation to connect, a
    /// worker retries its connect within this window and then waits at
    /// most this long for the coordinator's setup frame.
    pub connect_timeout: Duration,
    /// Per-connection handshake read deadline: how long the
    /// coordinator waits for an accepted socket to produce its
    /// preamble + hello before dropping it.
    pub handshake_timeout: Duration,
    /// After poisoning a generation, how long workers get to abort and
    /// report before they are killed outright.
    pub teardown_grace: Duration,
    /// Retries after the first attempt — for a worker's connect loop
    /// and for the supervisor's consecutive-no-progress recovery
    /// backstop. Exhausting it is a typed failure, never a silent
    /// infinite loop.
    pub retry_budget: u32,
    /// First retry delay; attempt `k` waits `backoff_base * 2^k`
    /// (jittered, capped at [`NetPolicy::backoff_max`]).
    pub backoff_base: Duration,
    /// Upper bound on any single backoff delay.
    pub backoff_max: Duration,
}

impl Default for NetPolicy {
    fn default() -> Self {
        NetPolicy {
            connect_timeout: Duration::from_secs(30),
            handshake_timeout: Duration::from_secs(10),
            teardown_grace: Duration::from_secs(5),
            retry_budget: 2,
            backoff_base: Duration::from_millis(50),
            backoff_max: Duration::from_secs(2),
        }
    }
}

impl NetPolicy {
    /// The defaults, with any `IMR_NET_*` environment overrides
    /// applied. Worker processes call this so the coordinator's policy
    /// (exported via [`NetPolicy::env_vars`] on the spawned command)
    /// reaches them; tests set the variables directly to shrink
    /// timeouts. Unparsable values fall back to the default.
    pub fn from_env() -> NetPolicy {
        let mut p = NetPolicy::default();
        let ms = |name: &str| -> Option<Duration> {
            std::env::var(name)
                .ok()
                .and_then(|v| v.parse::<u64>().ok())
                .map(Duration::from_millis)
        };
        if let Some(d) = ms(ENV_CONNECT_TIMEOUT_MS) {
            p.connect_timeout = d;
        }
        if let Some(d) = ms(ENV_HANDSHAKE_TIMEOUT_MS) {
            p.handshake_timeout = d;
        }
        if let Some(d) = ms(ENV_TEARDOWN_GRACE_MS) {
            p.teardown_grace = d;
        }
        if let Some(n) = std::env::var(ENV_RETRY_BUDGET)
            .ok()
            .and_then(|v| v.parse::<u32>().ok())
        {
            p.retry_budget = n;
        }
        if let Some(d) = ms(ENV_BACKOFF_BASE_MS) {
            p.backoff_base = d;
        }
        if let Some(d) = ms(ENV_BACKOFF_MAX_MS) {
            p.backoff_max = d;
        }
        p
    }

    /// The `IMR_NET_*` pairs describing this policy, for exporting to
    /// a spawned worker process so the fleet shares one policy.
    pub fn env_vars(&self) -> [(&'static str, String); 6] {
        [
            (
                ENV_CONNECT_TIMEOUT_MS,
                self.connect_timeout.as_millis().to_string(),
            ),
            (
                ENV_HANDSHAKE_TIMEOUT_MS,
                self.handshake_timeout.as_millis().to_string(),
            ),
            (
                ENV_TEARDOWN_GRACE_MS,
                self.teardown_grace.as_millis().to_string(),
            ),
            (ENV_RETRY_BUDGET, self.retry_budget.to_string()),
            (
                ENV_BACKOFF_BASE_MS,
                self.backoff_base.as_millis().to_string(),
            ),
            (ENV_BACKOFF_MAX_MS, self.backoff_max.as_millis().to_string()),
        ]
    }

    /// The jittered exponential delay before retry `attempt`
    /// (0-based). Deterministic: the jitter is a splitmix64 hash of
    /// `salt` and `attempt`, scaled into `[delay/2, delay]`.
    pub fn backoff_delay(&self, attempt: u32, salt: u64) -> Duration {
        let base = self.backoff_base.as_nanos() as u64;
        let cap = self.backoff_max.as_nanos() as u64;
        let exp = base.saturating_mul(1u64.checked_shl(attempt.min(63)).unwrap_or(u64::MAX));
        let delay = exp.min(cap);
        let jitter = splitmix64(salt ^ ((attempt as u64) << 32).wrapping_add(attempt as u64));
        // Scale into [delay/2, delay].
        let half = delay / 2;
        let span = delay - half;
        let offset = if span == 0 { 0 } else { jitter % (span + 1) };
        Duration::from_nanos(half + offset)
    }

    /// Checks the policy for nonsense values; called by
    /// `IterConfig::validate` so a bad policy fails before any socket
    /// is opened.
    pub fn validate(&self) -> Result<(), String> {
        if self.connect_timeout.is_zero()
            || self.handshake_timeout.is_zero()
            || self.teardown_grace.is_zero()
        {
            return Err("net policy timeouts must be non-zero".into());
        }
        if self.retry_budget == 0 {
            return Err("net policy retry_budget must be at least 1".into());
        }
        if self.backoff_base.is_zero() || self.backoff_base > self.backoff_max {
            return Err(
                "net policy backoff_base must be non-zero and no larger than backoff_max".into(),
            );
        }
        Ok(())
    }
}

/// The splitmix64 mixing function: a cheap, high-quality 64-bit hash
/// used for deterministic jitter and the chaos schedule PRNG.
pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_historic_constants() {
        let p = NetPolicy::default();
        assert_eq!(p.connect_timeout, Duration::from_secs(30));
        assert_eq!(p.handshake_timeout, Duration::from_secs(10));
        assert_eq!(p.teardown_grace, Duration::from_secs(5));
        assert_eq!(p.retry_budget, 2);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let p = NetPolicy::default();
        for attempt in 0..16 {
            let a = p.backoff_delay(attempt, 7);
            let b = p.backoff_delay(attempt, 7);
            assert_eq!(a, b, "same salt+attempt must give the same delay");
            assert!(a <= p.backoff_max);
            let uncapped = p
                .backoff_base
                .saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX));
            let nominal = uncapped.min(p.backoff_max);
            assert!(a >= nominal / 2, "jitter floor is half the nominal delay");
        }
        // Different salts de-synchronize at least one attempt.
        let diverged = (0..8).any(|k| p.backoff_delay(k, 1) != p.backoff_delay(k, 2));
        assert!(diverged);
    }

    #[test]
    fn backoff_grows_until_the_cap() {
        let p = NetPolicy {
            backoff_base: Duration::from_millis(10),
            backoff_max: Duration::from_millis(80),
            ..NetPolicy::default()
        };
        // Nominal delays: 10, 20, 40, 80, 80, ... (jitter keeps each
        // within [nominal/2, nominal]).
        assert!(p.backoff_delay(3, 0) <= Duration::from_millis(80));
        assert!(p.backoff_delay(20, 0) <= Duration::from_millis(80));
        assert!(p.backoff_delay(20, 0) >= Duration::from_millis(40));
    }

    #[test]
    fn env_round_trip() {
        let p = NetPolicy {
            connect_timeout: Duration::from_millis(1234),
            handshake_timeout: Duration::from_millis(56),
            teardown_grace: Duration::from_millis(78),
            retry_budget: 9,
            backoff_base: Duration::from_millis(3),
            backoff_max: Duration::from_millis(4),
        };
        let vars = p.env_vars();
        assert_eq!(vars[0], (ENV_CONNECT_TIMEOUT_MS, "1234".to_string()));
        assert_eq!(vars[3], (ENV_RETRY_BUDGET, "9".to_string()));
        // from_env is exercised end-to-end by the fault suites (the
        // coordinator exports these vars onto spawned workers); here we
        // only check the unset-var fallback.
        assert_eq!(NetPolicy::from_env().retry_budget, 2);
    }

    #[test]
    fn validate_rejects_nonsense() {
        let zero_budget = NetPolicy {
            retry_budget: 0,
            ..NetPolicy::default()
        };
        assert!(zero_budget.validate().unwrap_err().contains("retry_budget"));
        let inverted = NetPolicy {
            backoff_base: Duration::from_secs(3),
            backoff_max: Duration::from_secs(1),
            ..NetPolicy::default()
        };
        assert!(inverted.validate().unwrap_err().contains("backoff_base"));
        let zero_to = NetPolicy {
            connect_timeout: Duration::ZERO,
            ..NetPolicy::default()
        };
        assert!(zero_to.validate().unwrap_err().contains("non-zero"));
    }
}
