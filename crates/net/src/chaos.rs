//! Deterministic network-chaos injection for the TCP transport.
//!
//! Production networks corrupt, drop, duplicate, stall and reset; the
//! test matrix must too. This module injects those faults *inside* the
//! coordinator's transport edge — after a frame is encoded, or into
//! the byte stream the coordinator reads back — from a seeded
//! splitmix64 schedule, so a chaos run is exactly reproducible from
//! `(seed, generation, pair, direction)` and needs no real packet
//! mangling.
//!
//! Faults come in two classes:
//!
//! * **Teardown-class** (drop, bit-flip corruption, duplicate
//!   delivery, mid-frame reset): each consumes one unit of the
//!   schedule's shared [`budget`](ChaosConfig::budget). The wire-v2
//!   framing ([`frame`](crate::frame)) turns every one of them into a
//!   prompt, typed failure — a CRC/sequence mismatch, truncation, or
//!   EOF — that tears the connection down into the supervisor's
//!   reconnect-with-replay path. Once the budget is spent the
//!   transport is clean, so a run always completes (provided the
//!   retry budget exceeds the chaos budget; `IterConfig::validate`
//!   additionally requires checkpointing and a watchdog, because a
//!   silently dropped frame can only be recovered by stall
//!   detection).
//! * **Stall-class** (bounded read stalls): delay without damage.
//!   Stalls are counted as injections but never consume the budget
//!   and never require recovery.
//!
//! Supported rate maximums (enforced by [`ChaosConfig::validate`]):
//! each teardown-class rate ≤ 0.25, their sum ≤ 0.5, stall rate
//! ≤ 0.5, stall bound ≤ 500 ms. Beyond those the transport spends
//! more time failing than progressing and the schedule stops proving
//! anything.

use crate::policy::splitmix64;
use std::io::Read;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Direction tag mixed into a schedule's seed: coordinator → worker.
pub const DIR_OUTBOUND: u8 = 0;
/// Direction tag mixed into a schedule's seed: worker → coordinator.
pub const DIR_INBOUND: u8 = 1;

/// A seeded chaos schedule: per-event probabilities plus a shared
/// injection budget for the whole run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Root seed; every `(generation, pair, direction)` stream derives
    /// its own splitmix64 sequence from it.
    pub seed: u64,
    /// Probability a coordinator→worker frame is silently dropped.
    pub drop_rate: f64,
    /// Probability a frame (either direction) has one bit flipped.
    pub corrupt_rate: f64,
    /// Probability a coordinator→worker frame is delivered twice.
    pub duplicate_rate: f64,
    /// Probability the connection is reset mid-frame on a
    /// coordinator→worker send.
    pub reset_rate: f64,
    /// Probability a coordinator read stalls for a bounded time.
    pub stall_rate: f64,
    /// Upper bound on one injected read stall.
    pub stall_bound: Duration,
    /// Total teardown-class injections across the whole run (all
    /// generations, pairs and directions). Once spent, the transport
    /// behaves cleanly — this is what guarantees chaos runs
    /// terminate.
    pub budget: u64,
}

impl ChaosConfig {
    /// A schedule with the given seed, all rates zero and a budget of
    /// 3; turn individual faults on with the `with_*` builders.
    pub fn seeded(seed: u64) -> Self {
        ChaosConfig {
            seed,
            drop_rate: 0.0,
            corrupt_rate: 0.0,
            duplicate_rate: 0.0,
            reset_rate: 0.0,
            stall_rate: 0.0,
            stall_bound: Duration::from_millis(50),
            budget: 3,
        }
    }

    /// Sets the frame-drop probability.
    pub fn with_drop_rate(mut self, rate: f64) -> Self {
        self.drop_rate = rate;
        self
    }

    /// Sets the bit-flip corruption probability.
    pub fn with_corrupt_rate(mut self, rate: f64) -> Self {
        self.corrupt_rate = rate;
        self
    }

    /// Sets the duplicate-delivery probability.
    pub fn with_duplicate_rate(mut self, rate: f64) -> Self {
        self.duplicate_rate = rate;
        self
    }

    /// Sets the mid-frame connection-reset probability.
    pub fn with_reset_rate(mut self, rate: f64) -> Self {
        self.reset_rate = rate;
        self
    }

    /// Sets the read-stall probability and bound.
    pub fn with_stalls(mut self, rate: f64, bound: Duration) -> Self {
        self.stall_rate = rate;
        self.stall_bound = bound;
        self
    }

    /// Sets the total teardown-class injection budget.
    pub fn with_budget(mut self, budget: u64) -> Self {
        self.budget = budget;
        self
    }

    /// Checks rates against the documented maximums (module docs).
    pub fn validate(&self) -> Result<(), String> {
        let rates = [
            ("drop_rate", self.drop_rate, 0.25),
            ("corrupt_rate", self.corrupt_rate, 0.25),
            ("duplicate_rate", self.duplicate_rate, 0.25),
            ("reset_rate", self.reset_rate, 0.25),
            ("stall_rate", self.stall_rate, 0.5),
        ];
        for (name, rate, max) in rates {
            if !rate.is_finite() || !(0.0..=max).contains(&rate) {
                return Err(format!("chaos {name} must be in [0, {max}], got {rate}"));
            }
        }
        let teardown = self.drop_rate + self.corrupt_rate + self.duplicate_rate + self.reset_rate;
        if teardown > 0.5 {
            return Err(format!(
                "combined teardown-class chaos rate must not exceed 0.5, got {teardown}"
            ));
        }
        if self.stall_bound > Duration::from_millis(500) {
            return Err(format!(
                "chaos stall_bound must not exceed 500 ms, got {:?}",
                self.stall_bound
            ));
        }
        if teardown > 0.0 && self.budget == 0 {
            return Err("teardown-class chaos rates need a budget of at least 1".into());
        }
        Ok(())
    }

    /// Whether any fault can ever fire.
    pub fn is_active(&self) -> bool {
        self.drop_rate > 0.0
            || self.corrupt_rate > 0.0
            || self.duplicate_rate > 0.0
            || self.reset_rate > 0.0
            || self.stall_rate > 0.0
    }

    /// The per-direction schedule for `(generation, pair,
    /// direction)`, drawing on the run-wide `state` for its budget.
    pub fn direction(
        &self,
        state: &Arc<ChaosState>,
        generation: u64,
        pair: u64,
        direction: u8,
    ) -> ChaosDirection {
        let stream = splitmix64(
            self.seed
                ^ splitmix64(generation)
                ^ splitmix64(pair.wrapping_mul(0x9E37_79B9))
                ^ direction as u64,
        );
        ChaosDirection {
            cfg: *self,
            state: Arc::clone(state),
            rng: stream,
        }
    }
}

/// Run-wide shared chaos accounting: the remaining teardown budget and
/// a counter of everything injected (both classes), folded into the
/// job's `chaos_injections` metric by the coordinator.
#[derive(Debug)]
pub struct ChaosState {
    remaining: AtomicU64,
    injections: AtomicU64,
}

impl ChaosState {
    /// Fresh state with `budget` teardown-class injections available.
    pub fn new(budget: u64) -> Arc<ChaosState> {
        Arc::new(ChaosState {
            remaining: AtomicU64::new(budget),
            injections: AtomicU64::new(0),
        })
    }

    /// Takes one unit of teardown budget; `false` when exhausted.
    fn try_consume(&self) -> bool {
        self.remaining
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |r| r.checked_sub(1))
            .is_ok()
    }

    fn count(&self) {
        self.injections.fetch_add(1, Ordering::Relaxed);
    }

    /// Teardown budget still unspent.
    pub fn remaining(&self) -> u64 {
        self.remaining.load(Ordering::Relaxed)
    }

    /// Total injections so far (teardown + stall).
    pub fn injections(&self) -> u64 {
        self.injections.load(Ordering::Relaxed)
    }

    /// Drains the injection counter (returns the count and resets it),
    /// so the coordinator can fold it into a metrics registry once per
    /// generation without double counting.
    pub fn drain_injections(&self) -> u64 {
        self.injections.swap(0, Ordering::Relaxed)
    }
}

/// What to do with one outgoing encoded frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameAction {
    /// Write it as encoded.
    Deliver,
    /// Write nothing, but advance the sender's sequence number — the
    /// receiver detects the gap on the next frame's CRC.
    Drop,
    /// Flip the given bit of the encoded frame (offset past the
    /// length prefix, so the flip lands in the CRC or payload and the
    /// receiver detects it on this frame).
    Corrupt {
        /// Bit offset within the encoded frame.
        bit: usize,
    },
    /// Write the encoded frame twice; the receiver accepts the first
    /// copy and rejects the stale-sequence duplicate.
    Duplicate,
    /// Write only the first `cut` bytes, then shut the socket down.
    Reset {
        /// Bytes of the frame actually written before the reset.
        cut: usize,
    },
}

/// What to do to the bytes one `read` call returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadDisturbance {
    /// Sleep this long before returning (bounded stall).
    pub stall: Duration,
    /// Flip this bit of the returned bytes.
    pub flip: Option<usize>,
}

/// One direction's deterministic fault stream.
#[derive(Debug)]
pub struct ChaosDirection {
    cfg: ChaosConfig,
    state: Arc<ChaosState>,
    rng: u64,
}

impl ChaosDirection {
    fn next_u64(&mut self) -> u64 {
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        splitmix64(self.rng)
    }

    fn next_unit(&mut self) -> f64 {
        // 53 random bits into [0, 1).
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Rolls the schedule for one outgoing frame of `encoded_len`
    /// bytes. At most one fault fires per frame; teardown-class
    /// faults only fire while budget remains.
    pub fn frame_action(&mut self, encoded_len: usize) -> FrameAction {
        let roll = self.next_unit();
        // Always consume the same number of draws per frame so the
        // schedule stays aligned whether or not earlier faults fired.
        let detail = self.next_u64();
        let c = &self.cfg;
        let mut acc = c.drop_rate;
        if roll < acc {
            return self.teardown(FrameAction::Drop);
        }
        acc += c.corrupt_rate;
        if roll < acc {
            // Flip past the 4-byte length prefix so the damage lands
            // in the CRC or payload, never the length (a corrupted
            // length could stall the reader instead of failing fast).
            let span_bits = (encoded_len - 4) * 8;
            let bit = 32 + (detail as usize % span_bits);
            return self.teardown(FrameAction::Corrupt { bit });
        }
        acc += c.duplicate_rate;
        if roll < acc {
            return self.teardown(FrameAction::Duplicate);
        }
        acc += c.reset_rate;
        if roll < acc {
            let cut = 1 + (detail as usize % (encoded_len - 1));
            return self.teardown(FrameAction::Reset { cut });
        }
        FrameAction::Deliver
    }

    fn teardown(&self, action: FrameAction) -> FrameAction {
        if self.state.try_consume() {
            self.state.count();
            action
        } else {
            FrameAction::Deliver
        }
    }

    /// Rolls the schedule for one incoming `read` that returned
    /// `got` bytes.
    pub fn read_disturbance(&mut self, got: usize) -> ReadDisturbance {
        let roll = self.next_unit();
        let detail = self.next_u64();
        let c = &self.cfg;
        let mut out = ReadDisturbance {
            stall: Duration::ZERO,
            flip: None,
        };
        if got == 0 {
            return out;
        }
        if roll < c.stall_rate {
            let bound = c.stall_bound.as_millis().max(1) as u64;
            out.stall = Duration::from_millis(detail % bound + 1);
            self.state.count();
        } else if roll < c.stall_rate + c.corrupt_rate && self.state.try_consume() {
            self.state.count();
            out.flip = Some(detail as usize % (got * 8));
        }
        out
    }
}

/// A `Read` adapter that applies a [`ChaosDirection`]'s stall/flip
/// schedule to every read. With no direction attached it is a
/// transparent pass-through, so one reader type serves clean and
/// chaotic runs alike.
pub struct ChaosStream<R: Read> {
    inner: R,
    chaos: Option<ChaosDirection>,
}

impl<R: Read> ChaosStream<R> {
    /// A transparent pass-through.
    pub fn clean(inner: R) -> ChaosStream<R> {
        ChaosStream { inner, chaos: None }
    }

    /// A stream disturbed by `direction`'s schedule.
    pub fn chaotic(inner: R, direction: ChaosDirection) -> ChaosStream<R> {
        ChaosStream {
            inner,
            chaos: Some(direction),
        }
    }

    /// The wrapped reader.
    pub fn get_ref(&self) -> &R {
        &self.inner
    }
}

impl<R: Read> Read for ChaosStream<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        if let Some(chaos) = self.chaos.as_mut() {
            let d = chaos.read_disturbance(n);
            if !d.stall.is_zero() {
                std::thread::sleep(d.stall);
            }
            if let Some(bit) = d.flip {
                buf[bit / 8] ^= 1 << (bit % 8);
            }
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn validate_enforces_documented_maximums() {
        assert!(ChaosConfig::seeded(1).validate().is_ok());
        assert!(ChaosConfig::seeded(1)
            .with_drop_rate(0.3)
            .validate()
            .unwrap_err()
            .contains("drop_rate"));
        assert!(ChaosConfig::seeded(1)
            .with_drop_rate(0.2)
            .with_corrupt_rate(0.2)
            .with_reset_rate(0.2)
            .validate()
            .unwrap_err()
            .contains("combined"));
        assert!(ChaosConfig::seeded(1)
            .with_stalls(0.1, Duration::from_secs(2))
            .validate()
            .unwrap_err()
            .contains("stall_bound"));
        assert!(ChaosConfig::seeded(1)
            .with_drop_rate(0.1)
            .with_budget(0)
            .validate()
            .unwrap_err()
            .contains("budget"));
        assert!(ChaosConfig::seeded(1)
            .with_corrupt_rate(f64::NAN)
            .validate()
            .is_err());
    }

    fn collect_actions(seed: u64, frames: usize, budget: u64) -> Vec<FrameAction> {
        let cfg = ChaosConfig::seeded(seed)
            .with_drop_rate(0.1)
            .with_corrupt_rate(0.1)
            .with_duplicate_rate(0.1)
            .with_reset_rate(0.1)
            .with_budget(budget);
        let state = ChaosState::new(cfg.budget);
        let mut dir = cfg.direction(&state, 1, 0, DIR_OUTBOUND);
        (0..frames).map(|_| dir.frame_action(64)).collect()
    }

    #[test]
    fn schedule_is_deterministic_per_seed() {
        assert_eq!(
            collect_actions(42, 200, 1000),
            collect_actions(42, 200, 1000)
        );
        assert_ne!(
            collect_actions(42, 200, 1000),
            collect_actions(43, 200, 1000)
        );
    }

    #[test]
    fn budget_bounds_teardown_injections() {
        let actions = collect_actions(7, 500, 3);
        let injected = actions
            .iter()
            .filter(|a| !matches!(a, FrameAction::Deliver))
            .count();
        assert!(
            injected <= 3,
            "budget 3 but {injected} teardown faults fired"
        );
        // With 40% combined rates over 500 frames, the budget is
        // certainly spent.
        assert_eq!(injected, 3);
    }

    #[test]
    fn directions_draw_distinct_streams() {
        let cfg = ChaosConfig::seeded(9)
            .with_drop_rate(0.25)
            .with_budget(1 << 30);
        let state = ChaosState::new(cfg.budget);
        let a: Vec<_> = {
            let mut d = cfg.direction(&state, 1, 0, DIR_OUTBOUND);
            (0..100).map(|_| d.frame_action(32)).collect()
        };
        let b: Vec<_> = {
            let mut d = cfg.direction(&state, 1, 0, DIR_INBOUND);
            (0..100).map(|_| d.frame_action(32)).collect()
        };
        let c: Vec<_> = {
            let mut d = cfg.direction(&state, 2, 0, DIR_OUTBOUND);
            (0..100).map(|_| d.frame_action(32)).collect()
        };
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn corrupt_bits_always_land_past_the_length_prefix() {
        let cfg = ChaosConfig::seeded(3)
            .with_corrupt_rate(0.25)
            .with_budget(1 << 30);
        let state = ChaosState::new(cfg.budget);
        let mut dir = cfg.direction(&state, 1, 2, DIR_OUTBOUND);
        let mut seen = 0;
        for _ in 0..2000 {
            if let FrameAction::Corrupt { bit } = dir.frame_action(16) {
                assert!((32..16 * 8).contains(&bit), "bit {bit} out of range");
                seen += 1;
            }
        }
        assert!(seen > 0, "corruption never fired at rate 0.25");
    }

    #[test]
    fn chaos_stream_flips_within_budget_and_counts() {
        let cfg = ChaosConfig::seeded(11)
            .with_corrupt_rate(0.25)
            .with_stalls(0.25, Duration::from_millis(1))
            .with_budget(2);
        let state = ChaosState::new(cfg.budget);
        let data = vec![0u8; 4096];
        let mut s = ChaosStream::chaotic(
            Cursor::new(data.clone()),
            cfg.direction(&state, 1, 0, DIR_INBOUND),
        );
        let mut out = vec![0u8; 4096];
        let mut filled = 0;
        while filled < out.len() {
            let upto = (filled + 64).min(out.len());
            let n = s.read(&mut out[filled..upto]).unwrap();
            if n == 0 {
                break;
            }
            filled += n;
        }
        let flipped: u32 = out.iter().map(|b| b.count_ones()).sum();
        assert!(
            flipped <= 2,
            "at most `budget` bits may flip, got {flipped}"
        );
        assert!(state.injections() > 0, "stalls/flips must be counted");
        let total = state.injections();
        assert_eq!(state.drain_injections(), total);
        assert_eq!(state.injections(), 0, "drain resets the counter");
    }

    #[test]
    fn clean_stream_is_transparent() {
        let data: Vec<u8> = (0..=255).collect();
        let mut s = ChaosStream::clean(Cursor::new(data.clone()));
        let mut out = Vec::new();
        s.read_to_end(&mut out).unwrap();
        assert_eq!(out, data);
    }
}
