//! The reduce→map connection abstraction shared by both backends.

use bytes::Bytes;
use crossbeam_channel::{bounded, Receiver, Sender};

/// The link (or the whole generation) is gone: the peer hung up or the
/// supervisor poisoned the run for teardown. Recoverable — the caller
/// aborts the current generation and the supervisor rolls back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Closed;

/// A pair's view of the shuffle fabric: one logical duplex link to
/// every pair (including itself), preserving per-link FIFO order and a
/// bounded number of in-flight segments per link (the paper's
/// persistent-socket backpressure, §3.2–3.3).
///
/// `send` blocks while the destination link is at capacity; `recv`
/// blocks until a segment from `src` arrives. Both fail with [`Closed`]
/// once the peer is gone — but `recv` drains segments that were already
/// in flight first, so a producer's clean shutdown never loses data.
pub trait Transport {
    /// Send one encoded segment to pair `dest`.
    fn send(&mut self, dest: usize, seg: Bytes) -> Result<(), Closed>;
    /// Receive the next encoded segment from pair `src`.
    fn recv(&mut self, src: usize) -> Result<Bytes, Closed>;
}

/// Builder for the in-process channel implementation: an n×n matrix of
/// bounded crossbeam channels, one per (producer, consumer) pair.
pub struct ChannelMesh;

impl ChannelMesh {
    /// Create the links for `n` pairs, each channel bounded to
    /// `buffer` in-flight segments. `links()[q]` is pair `q`'s view.
    pub fn links(n: usize, buffer: usize) -> Vec<ChannelLink> {
        let mut senders: Vec<Vec<Option<Sender<Bytes>>>> =
            (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
        let mut receivers: Vec<Vec<Option<Receiver<Bytes>>>> =
            (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
        for from in 0..n {
            for to in 0..n {
                let (tx, rx) = bounded::<Bytes>(buffer);
                senders[from][to] = Some(tx);
                receivers[to][from] = Some(rx);
            }
        }
        senders
            .into_iter()
            .zip(receivers)
            .map(|(sends, recvs)| ChannelLink {
                sends: sends.into_iter().map(Option::unwrap).collect(),
                recvs: recvs.into_iter().map(Option::unwrap).collect(),
            })
            .collect()
    }
}

/// One pair's endpoint of a [`ChannelMesh`].
pub struct ChannelLink {
    sends: Vec<Sender<Bytes>>,
    recvs: Vec<Receiver<Bytes>>,
}

impl ChannelLink {
    /// Segments queued on this endpoint's inbound channels, not yet
    /// received — the live depth of the pair's shuffle/handoff buffers.
    pub fn backlog(&self) -> u64 {
        self.recvs.iter().map(|rx| rx.len() as u64).sum()
    }
}

impl Transport for ChannelLink {
    fn send(&mut self, dest: usize, seg: Bytes) -> Result<(), Closed> {
        // Blocks while the bounded buffer is full; errs only when the
        // consumer's endpoint was dropped (worker exit or teardown).
        self.sends[dest].send(seg).map_err(|_| Closed)
    }
    fn recv(&mut self, src: usize) -> Result<Bytes, Closed> {
        // Crossbeam drains buffered segments before reporting
        // disconnection, matching the trait's drain-first contract.
        self.recvs[src].recv().map_err(|_| Closed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::thread;
    use std::time::Duration;

    #[test]
    fn per_link_fifo_and_self_send() {
        let mut links = ChannelMesh::links(2, 1);
        let mut l1 = links.pop().unwrap();
        let mut l0 = links.pop().unwrap();
        thread::scope(|s| {
            s.spawn(|| {
                l1.send(0, Bytes::from_static(b"a")).unwrap();
                l1.send(0, Bytes::from_static(b"b")).unwrap();
                l1.send(1, Bytes::from_static(b"self")).unwrap();
                assert_eq!(l1.recv(1).unwrap().as_slice(), b"self");
            });
            assert_eq!(l0.recv(1).unwrap().as_slice(), b"a");
            assert_eq!(l0.recv(1).unwrap().as_slice(), b"b");
        });
    }

    #[test]
    fn send_blocks_at_capacity() {
        let mut links = ChannelMesh::links(2, 1);
        let mut l1 = links.pop().unwrap();
        let mut l0 = links.pop().unwrap();
        let second_sent = AtomicBool::new(false);
        thread::scope(|s| {
            let second_sent = &second_sent;
            s.spawn(move || {
                l0.send(1, Bytes::from_static(b"one")).unwrap();
                // This second send must block until the consumer pops.
                l0.send(1, Bytes::from_static(b"two")).unwrap();
                second_sent.store(true, Ordering::Release);
            });
            thread::sleep(Duration::from_millis(100));
            assert!(
                !second_sent.load(Ordering::Acquire),
                "second send should have blocked at buffer capacity 1"
            );
            assert_eq!(l1.recv(0).unwrap().as_slice(), b"one");
            assert_eq!(l1.recv(0).unwrap().as_slice(), b"two");
        });
        assert!(second_sent.load(Ordering::Acquire));
    }

    #[test]
    fn drains_in_flight_before_reporting_closed() {
        let mut links = ChannelMesh::links(2, 1);
        let mut l1 = links.pop().unwrap();
        let mut l0 = links.pop().unwrap();
        l0.send(1, Bytes::from_static(b"last")).unwrap();
        drop(l0);
        assert_eq!(l1.recv(0).unwrap().as_slice(), b"last");
        assert!(matches!(l1.recv(0), Err(Closed)));
        assert!(matches!(l1.send(0, Bytes::new()), Err(Closed)));
    }
}
