//! CRC32 (IEEE 802.3 / zlib polynomial) for frame integrity checks.
//!
//! The wire format ([`frame`](crate::frame)) protects every payload
//! with a CRC computed over the connection's implicit frame sequence
//! number followed by the payload bytes, so bit flips, dropped frames
//! and duplicated frames all surface as a checksum mismatch on the
//! receiver. Implemented in-crate (a 256-entry table built at compile
//! time) because the workspace builds fully offline.

/// The reflected IEEE polynomial (0xEDB88320), as used by zlib,
/// Ethernet and PNG.
const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// Incremental CRC32 state.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    /// A fresh checksum.
    pub fn new() -> Crc32 {
        Crc32 { state: !0 }
    }

    /// Folds `data` into the checksum; returns `self` for chaining.
    pub fn update(mut self, data: &[u8]) -> Crc32 {
        for &byte in data {
            let idx = (self.state ^ byte as u32) & 0xFF;
            self.state = (self.state >> 8) ^ TABLE[idx as usize];
        }
        self
    }

    /// The final checksum value.
    pub fn finish(self) -> u32 {
        !self.state
    }
}

/// One-shot CRC32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    Crc32::new().update(data).finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn incremental_matches_one_shot() {
        let whole = crc32(b"hello, world");
        let split = Crc32::new()
            .update(b"hello")
            .update(b", ")
            .update(b"world")
            .finish();
        assert_eq!(whole, split);
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let data = vec![0x5Au8; 64];
        let clean = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(
                    crc32(&flipped),
                    clean,
                    "flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
    }
}
