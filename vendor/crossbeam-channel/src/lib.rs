//! Offline stand-in for the `crossbeam-channel` crate.
//!
//! Multi-producer multi-consumer FIFO channels, bounded or unbounded,
//! built on `std::sync::{Mutex, Condvar}`. Semantics match the real
//! crate for the subset the workspace uses:
//!
//! * [`bounded(cap)`](bounded) blocks senders when the queue holds
//!   `cap` messages — the back-pressure the native iMapReduce runtime
//!   relies on to model the paper's buffered reduce→map hand-off;
//! * dropping all [`Sender`]s disconnects the channel: receivers drain
//!   the queue and then see [`RecvError`];
//! * dropping all [`Receiver`]s makes further sends fail with
//!   [`SendError`], returning the rejected message.
//!
//! Performance is adequate for coarse-grained segment hand-offs (one
//! message per task per iteration); no lock-free fast path is needed.

#![forbid(unsafe_code)]

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};

struct Shared<T> {
    queue: Mutex<State<T>>,
    /// Signalled when a message is pushed or all senders leave.
    not_empty: Condvar,
    /// Signalled when a message is popped or all receivers leave.
    not_full: Condvar,
    cap: Option<usize>,
}

struct State<T> {
    buf: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

/// Error returned by [`Sender::send`] when all receivers are gone;
/// carries the unsent message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

impl<T: fmt::Debug> std::error::Error for SendError<T> {}

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// all senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty but senders remain.
    Empty,
    /// The channel is empty and all senders are gone.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => write!(f, "receiving on an empty channel"),
            TryRecvError::Disconnected => write!(f, "receiving on a disconnected channel"),
        }
    }
}

impl std::error::Error for TryRecvError {}

/// The sending half of a channel. Clonable; the channel disconnects
/// when the last clone drops.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a channel. Clonable (MPMC); each message is
/// delivered to exactly one receiver.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates a channel holding at most `cap` queued messages. A `send` on
/// a full channel blocks until a receiver makes room.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    channel(Some(cap))
}

/// Creates a channel with no capacity bound: `send` never blocks.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    channel(None)
}

fn channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(State {
            buf: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        cap,
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Enqueues `msg`, blocking while the channel is full. Fails only
    /// when every receiver has been dropped.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let shared = &*self.shared;
        let mut state = shared.queue.lock().unwrap();
        loop {
            if state.receivers == 0 {
                return Err(SendError(msg));
            }
            match shared.cap {
                Some(cap) if state.buf.len() >= cap.max(1) => {
                    state = shared.not_full.wait(state).unwrap();
                }
                _ => break,
            }
        }
        state.buf.push_back(msg);
        drop(state);
        shared.not_empty.notify_one();
        Ok(())
    }
}

impl<T> Receiver<T> {
    /// Dequeues the next message, blocking while the channel is empty.
    /// Fails once the channel is empty and every sender is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let shared = &*self.shared;
        let mut state = shared.queue.lock().unwrap();
        loop {
            if let Some(msg) = state.buf.pop_front() {
                drop(state);
                shared.not_full.notify_one();
                return Ok(msg);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = shared.not_empty.wait(state).unwrap();
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let shared = &*self.shared;
        let mut state = shared.queue.lock().unwrap();
        if let Some(msg) = state.buf.pop_front() {
            drop(state);
            shared.not_full.notify_one();
            return Ok(msg);
        }
        if state.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.queue.lock().unwrap().buf.len()
    }

    /// Whether no message is currently queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A blocking iterator draining the channel until disconnection.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { rx: self }
    }
}

/// Blocking iterator over received messages.
pub struct Iter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.rx.recv().ok()
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.queue.lock().unwrap().senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.queue.lock().unwrap().receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.queue.lock().unwrap();
        state.senders -= 1;
        if state.senders == 0 {
            drop(state);
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.shared.queue.lock().unwrap();
        state.receivers -= 1;
        if state.receivers == 0 {
            drop(state);
            self.shared.not_full.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sender {{ .. }}")
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Receiver {{ .. }}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn fifo_order_per_sender() {
        let (tx, rx) = unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        for i in 0..100 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn bounded_send_blocks_until_recv() {
        let (tx, rx) = bounded(1);
        tx.send(1u32).unwrap();
        let t = thread::spawn(move || {
            // This send must block until the main thread receives.
            tx.send(2).unwrap();
        });
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        t.join().unwrap();
    }

    #[test]
    fn disconnect_on_sender_drop() {
        let (tx, rx) = unbounded();
        tx.send(9u8).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(9));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_after_all_receivers_drop() {
        let (tx, rx) = bounded(4);
        drop(rx);
        assert_eq!(tx.send(5u8), Err(SendError(5)));
    }

    #[test]
    fn mpmc_delivers_each_message_once() {
        let (tx, rx) = unbounded();
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || rx.iter().count())
            })
            .collect();
        drop(rx);
        for i in 0..1_000 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total: usize = consumers.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 1_000);
    }
}
