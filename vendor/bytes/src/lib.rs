//! Offline stand-in for the `bytes` crate.
//!
//! The container this workspace builds in has no crates.io access, so
//! the handful of `bytes` APIs the repo uses are reimplemented here:
//! [`Bytes`] (a cheaply clonable, sliceable, shared immutable buffer),
//! [`BytesMut`] (a growable builder that freezes into [`Bytes`]), and
//! the [`Buf`]/[`BufMut`] cursor traits. Semantics match the real crate
//! for this subset; anything the repo does not call is omitted.

#![forbid(unsafe_code)]

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, RangeBounds};
use std::sync::Arc;

/// A cheaply clonable, contiguous slice of shared immutable memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// A buffer borrowing from static data (copied here; the real crate
    /// keeps the reference, which only matters for allocation counts).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The viewed bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// A sub-view of the buffer, sharing the same backing allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of range");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Splits off and returns the first `at` bytes; `self` keeps the
    /// rest.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of range");
        let front = self.slice(..at);
        self.start += at;
        front
    }

    /// Copies the view into a fresh vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::from(v),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from_static(v)
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            write!(f, "{}", std::ascii::escape_default(b))?;
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.buf.extend_from_slice(extend);
    }

    /// Converts the accumulated bytes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

/// Read cursor over a byte source. All multi-byte reads are big-endian,
/// matching the real crate's default `get_*` methods.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];

    /// Consumes `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// True if any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copies out the next `dst.len()` bytes.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Reads a big-endian `f32`.
    fn get_f32(&mut self) -> f32 {
        f32::from_bits(self.get_u32())
    }

    /// Reads a big-endian `f64`.
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of range");
        self.start += cnt;
    }
}

/// Write cursor over a growable byte sink. All multi-byte writes are
/// big-endian, matching the real crate's default `put_*` methods.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Writes one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Writes a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Writes a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Writes a big-endian `f32`.
    fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    /// Writes a big-endian `f64`.
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_numbers() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u8(7);
        b.put_u32(0xDEAD_BEEF);
        b.put_f64(1.5);
        b.put_f32(-2.5);
        let mut bytes = b.freeze();
        assert_eq!(bytes.len(), 1 + 4 + 8 + 4);
        assert_eq!(bytes.get_u8(), 7);
        assert_eq!(bytes.get_u32(), 0xDEAD_BEEF);
        assert_eq!(bytes.get_f64(), 1.5);
        assert_eq!(bytes.get_f32(), -2.5);
        assert!(!bytes.has_remaining());
    }

    #[test]
    fn slicing_shares_and_bounds() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(s.as_slice(), &[2, 3, 4]);
        let t = s.slice(1..);
        assert_eq!(t.as_slice(), &[3, 4]);
        assert_eq!(b.len(), 6);
    }

    #[test]
    fn split_to_consumes_front() {
        let mut b = Bytes::from(vec![9, 8, 7, 6]);
        let front = b.split_to(2);
        assert_eq!(front.as_slice(), &[9, 8]);
        assert_eq!(b.as_slice(), &[7, 6]);
    }

    #[test]
    fn equality_ignores_backing_offsets() {
        let a = Bytes::from(vec![1, 2, 3]).slice(1..);
        let b = Bytes::from(vec![2, 3]);
        assert_eq!(a, b);
    }
}
