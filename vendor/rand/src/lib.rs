//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset the workspace uses: [`rngs::SmallRng`]
//! (xoshiro256++, seeded via SplitMix64 — the same generator family the
//! real `rand 0.8` `SmallRng` uses on 64-bit targets),
//! [`SeedableRng::seed_from_u64`], and [`Rng`] with `gen::<f64>()` /
//! `gen::<u64>()` / `gen::<u32>()` / `gen::<bool>()` and
//! `gen_range(a..b)` over integer and float ranges. Streams are
//! deterministic per seed, which is all the workspace's generators and
//! tests rely on.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(state: u64) -> Self;
}

/// Sampling of a value from the "standard" distribution of its type:
/// uniform over the full integer range, uniform in `[0, 1)` for floats.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// A half-open range values can be drawn uniformly from.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Debiased modular sampling: reject the tail of the u64
                // space that would favor low residues.
                let zone = u64::MAX - (u64::MAX - span + 1) % span;
                loop {
                    let v = rng.next_u64();
                    if v <= zone {
                        return self.start + (v % span) as $t;
                    }
                }
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, usize);

impl SampleRange for Range<u64> {
    type Output = u64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = self.end - self.start;
        let zone = u64::MAX - (u64::MAX - span + 1) % span;
        loop {
            let v = rng.next_u64();
            if v <= zone {
                return self.start + v % span;
            }
        }
    }
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// The user-facing sampling interface.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from a half-open range.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and statistically strong; the same
    /// family the real `SmallRng` uses on 64-bit platforms.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            let s = [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_stay_in_range_and_spread() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn ranges_cover_and_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            let v = rng.gen_range(0u32..5);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1_000 {
            let f = rng.gen_range(-3.0..3.0);
            assert!((-3.0..3.0).contains(&f));
        }
    }
}
