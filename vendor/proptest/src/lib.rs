//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset the workspace uses: the [`proptest!`] macro with
//! an optional `#![proptest_config(...)]` header, `any::<T>()` for the
//! primitive types the tests sample, half-open integer/float range
//! strategies, tuple strategies, and [`collection::vec`] /
//! [`collection::btree_set`]. Unlike the real crate there is no
//! shrinking and no persisted failure file: each test runs
//! `config.cases` deterministic cases whose inputs derive from a hash
//! of the test name and the case index, so a failure reproduces by
//! simply rerunning the test.

#![forbid(unsafe_code)]

use std::collections::BTreeSet;
use std::ops::Range;

/// Per-test configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test executes.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default (256) is overkill for CI-style runs; the
        // workspace's heavier suites all override this downward anyway.
        ProptestConfig { cases: 32 }
    }
}

/// Deterministic per-case random source (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds a generator; equal seeds give equal streams.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x6A09_E667_F3BC_C909,
        }
    }

    /// Derives the seed for one case of one named test.
    pub fn case_seed(test_name: &str, case: u32) -> u64 {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Reinterpreted bits: exercises NaN, infinities and subnormals,
        // which is exactly what codec round-trip tests want to see.
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The canonical strategy for `T`: uniform over the whole type.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{BTreeSet, Range, Strategy, TestRng};

    /// Strategy for `Vec<T>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// A vector of `size` elements drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.clone().sample(rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<T>`; duplicates collapse, so the set may
    /// end up smaller than the drawn size (as in the real crate).
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// A set of up to `size` elements drawn from `elem`.
    pub fn btree_set<S>(elem: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { elem, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = self.size.clone().sample(rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Asserts a condition inside a proptest body.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies. Supports the real crate's surface grammar:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(8))]
///     /// docs
///     #[test]
///     fn my_test(x in any::<u32>(), mut v in collection::vec(0u8..9, 0..4)) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { config = (<$crate::ProptestConfig as ::std::default::Default>::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = ($config:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                for __case in 0..__config.cases {
                    let __seed = $crate::TestRng::case_seed(stringify!($name), __case);
                    let mut __rng = $crate::TestRng::new(__seed);
                    $(
                        let $pat = $crate::Strategy::sample(&($strat), &mut __rng);
                    )+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn strategies_are_deterministic_per_seed() {
        use super::{collection, Strategy, TestRng};
        let strat = collection::vec((any::<u32>(), any::<f64>()), 0..50);
        let mut a = TestRng::new(11);
        let mut b = TestRng::new(11);
        let va = strat.sample(&mut a);
        let vb = strat.sample(&mut b);
        assert_eq!(va.len(), vb.len());
        for (x, y) in va.iter().zip(&vb) {
            assert_eq!(x.0, y.0);
            assert!(x.1 == y.1 || (x.1.is_nan() && y.1.is_nan()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Range strategies respect their bounds.
        #[test]
        fn ranges_in_bounds(x in 3u32..9, y in 10usize..20, f in -2.0..2.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((10..20).contains(&y));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        /// Vec strategy honours its size range; mutable patterns work.
        #[test]
        fn vec_sizes_in_bounds(mut v in super::collection::vec(any::<u8>(), 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
            v.sort_unstable();
            prop_assert!(v.windows(2).all(|w| w[0] <= w[1]));
        }
    }
}
