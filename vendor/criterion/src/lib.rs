//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset the workspace's bench targets use:
//! [`Criterion::bench_function`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros (both the
//! `name = ...; config = ...; targets = ...` form and the simple form).
//! Each benchmark runs `sample_size` timed samples and prints the
//! median per-iteration wall-clock time — no statistics engine, plots,
//! or baseline storage.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// How batched inputs are sized; accepted for API compatibility, all
/// variants behave the same here (one input per routine call).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per measured iteration.
    PerIteration,
}

/// The benchmark harness entry point.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
        };
        // Calibration pass: grow iteration count until one sample takes
        // a measurable slice of time, so cheap routines aren't lost in
        // timer noise.
        loop {
            bencher.samples.clear();
            f(&mut bencher);
            let total: Duration = bencher.samples.iter().sum();
            if total >= Duration::from_millis(1) || bencher.iters_per_sample >= 1 << 20 {
                break;
            }
            bencher.iters_per_sample *= 8;
        }
        for _ in 1..self.sample_size {
            f(&mut bencher);
        }
        let mut per_iter: Vec<f64> = bencher
            .samples
            .iter()
            .map(|d| d.as_secs_f64() / bencher.iters_per_sample as f64)
            .collect();
        per_iter.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN timings"));
        let median = per_iter[per_iter.len() / 2];
        println!(
            "{id:<40} median {} ({} samples)",
            format_time(median),
            per_iter.len()
        );
        self
    }
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Timer handle passed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine`, excluding nothing: the whole call is measured.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            std::hint::black_box(routine());
        }
        self.samples.push(start.elapsed());
    }

    /// Times `routine` on inputs built by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iters_per_sample {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.samples.push(elapsed);
    }
}

/// Declares a group function running each target benchmark.
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = <$crate::Criterion as ::std::default::Default>::default();
            targets = $($target),+
        }
    };
}

/// Declares `fn main()` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        c.bench_function("trivial_add", |b| b.iter(|| std::hint::black_box(2u64) + 2));
        c.bench_function("batched_sum", |b| {
            b.iter_batched(
                || vec![1u64; 64],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
    }

    criterion_group! {
        name = bench_group;
        config = Criterion::default().sample_size(3);
        targets = trivial,
    }

    #[test]
    fn harness_runs_groups() {
        bench_group();
    }

    #[test]
    fn simple_group_form_compiles() {
        criterion_group!(simple, trivial);
        simple();
    }
}
