//! Offline stand-in for the `parking_lot` crate.
//!
//! Thin wrappers over `std::sync` primitives exposing `parking_lot`'s
//! poison-free API shape: `lock()`/`read()`/`write()` return guards
//! directly instead of `Result`s. A poisoned std lock means a thread
//! panicked while holding it; these wrappers propagate the inner data
//! anyway (matching `parking_lot`, which has no poisoning at all).
//! Only the subset this workspace uses is provided — `Mutex`, `RwLock`
//! and `Barrier`; code needing a condition variable pairs
//! `std::sync::Condvar` with std locks directly.

#![forbid(unsafe_code)]

use std::sync::{self, PoisonError};

/// Exclusive guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reusable cyclic barrier.
#[derive(Debug)]
pub struct Barrier {
    inner: sync::Barrier,
}

impl Barrier {
    /// A barrier for `n` threads.
    pub fn new(n: usize) -> Self {
        Barrier {
            inner: sync::Barrier::new(n),
        }
    }

    /// Blocks until `n` threads have called `wait`. Returns a result
    /// whose `is_leader()` is true for exactly one thread per
    /// generation.
    pub fn wait(&self) -> BarrierWaitResult {
        BarrierWaitResult(self.inner.wait().is_leader())
    }
}

/// Result of a barrier wait.
#[derive(Debug, Clone, Copy)]
pub struct BarrierWaitResult(bool);

impl BarrierWaitResult {
    /// True for the single leader thread of this generation.
    pub fn is_leader(&self) -> bool {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                thread::spawn(move || {
                    for _ in 0..1_000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4_000);
    }

    #[test]
    fn rwlock_allows_concurrent_reads() {
        let l = RwLock::new(7);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 14);
        drop((a, b));
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn barrier_elects_one_leader_per_generation() {
        let b = Arc::new(Barrier::new(3));
        for _ in 0..2 {
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let b = Arc::clone(&b);
                    thread::spawn(move || b.wait().is_leader())
                })
                .collect();
            let leaders = handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .filter(|&is_leader| is_leader)
                .count();
            assert_eq!(leaders, 1);
        }
    }
}
