//! Matrix power computation (paper §5.2) — an iteration that needs two
//! chained map-reduce phases (`job1.addSuccessor(job2)`), run on both
//! engines and verified against a dense reference.
//!
//! Run with: `cargo run --release --example matrix_power`

use imr_algorithms::matpower;
use imr_algorithms::testutil::{imr_runner_on, mr_runner_on};
use imr_graph::generate_matrix;
use imr_simcluster::ClusterSpec;

fn main() {
    let size = 40;
    let iterations = 4; // computes M^5
    let m = generate_matrix(size, 3);
    println!("computing M^{} for a {size}x{size} matrix", iterations + 1);

    // iMapReduce: two persistent phases per pair, local hand-offs.
    let imr = imr_runner_on(ClusterSpec::local(4));
    let a = matpower::run_matpower_imr(&imr, &m, 2, iterations).expect("imr");
    println!(
        "iMapReduce: {} iterations in {}",
        a.iterations, a.report.finished
    );

    // Baseline: two chained Hadoop jobs per iteration, M reloaded and
    // reshuffled every time.
    let mr = mr_runner_on(ClusterSpec::local(4));
    let b = matpower::run_matpower_mr(&mr, &m, 2, iterations).expect("mr");
    println!(
        "MapReduce:  {} iterations in {}",
        b.iterations, b.report.finished
    );
    println!(
        "speedup: {:.2}x (paper: ~10% — the Map2/Reduce2 shuffle dominates)",
        b.report.finished.as_secs_f64() / a.report.finished.as_secs_f64()
    );

    // Exact agreement between engines and with the dense reference.
    let expect = matpower::reference_matpower(&m, iterations);
    assert_eq!(a.final_state.len(), size * size);
    for (((i, k), v), (_, w)) in a.final_state.iter().zip(&b.result) {
        let e = expect[*i as usize][*k as usize];
        assert!((v - e).abs() < 1e-9 * e.abs().max(1.0), "({i},{k})");
        assert!((w - e).abs() < 1e-9 * e.abs().max(1.0));
    }
    println!("results verified against dense matrix multiplication");
}
