//! Quickstart: the paper's Fig. 3 PageRank program, in Rust.
//!
//! Builds a small synthetic webgraph, expresses PageRank as an
//! [`IterativeJob`] (map + reduce + distance, exactly the paper's three
//! interfaces), and runs it under iMapReduce with a distance-based
//! termination threshold — then checks the result against a sequential
//! power iteration.
//!
//! Run with: `cargo run --release --example quickstart`

use imapreduce::{
    load_partitioned, Emitter, IterConfig, IterativeJob, IterativeRunner, StateInput,
};
use imr_dfs::Dfs;
use imr_graph::{generate_graph, pagerank_degree_dist};
use imr_simcluster::{ClusterSpec, Metrics, TaskClock};
use std::sync::Arc;

/// PageRank as an iMapReduce job (paper Fig. 3).
struct PageRank {
    damping: f64,
    n: u64,
}

impl IterativeJob for PageRank {
    type K = u32; // page id
    type S = f64; // ranking score (state data)
    type T = Vec<u32>; // outbound neighbors (static data)

    fn map(
        &self,
        k: &u32,
        state: StateInput<'_, u32, f64>,
        adj: &Vec<u32>,
        out: &mut Emitter<u32, f64>,
    ) {
        // Retain (1-d)/N, spread d*R(u)/|N+(u)| to the neighbors.
        out.emit(*k, (1.0 - self.damping) / self.n as f64);
        if !adj.is_empty() {
            let share = self.damping * state.one() / adj.len() as f64;
            for &v in adj {
                out.emit(v, share);
            }
        }
    }

    fn reduce(&self, _k: &u32, values: Vec<f64>) -> f64 {
        values.into_iter().sum()
    }

    fn distance(&self, _k: &u32, prev: &f64, cur: &f64) -> f64 {
        (prev - cur).abs() // Manhattan distance, as in Fig. 3
    }
}

fn main() {
    // A 4-node cluster like the paper's local testbed.
    let spec = Arc::new(ClusterSpec::local(4));
    let metrics = Arc::new(Metrics::default());
    let dfs = Dfs::new(Arc::clone(&spec), Arc::clone(&metrics), 3);
    let runner = IterativeRunner::new(spec, dfs, metrics);

    // A small log-normal webgraph (same generator as the paper's
    // synthetic PageRank sets).
    let graph = generate_graph(5_000, 35_000, pagerank_degree_dist(), 7);
    let n = graph.num_nodes() as u64;
    let job = PageRank { damping: 0.85, n };

    // statepath / staticpath, co-partitioned over 4 task pairs.
    let mut clock = TaskClock::default();
    let ranks: Vec<(u32, f64)> = (0..n as u32).map(|u| (u, 1.0 / n as f64)).collect();
    load_partitioned(
        runner.dfs(),
        "/pr/state",
        ranks,
        4,
        |k, t| job.partition(k, t),
        &mut clock,
    )
    .expect("load state");
    load_partitioned(
        runner.dfs(),
        "/pr/static",
        graph.adjacency_records(),
        4,
        |k, t| job.partition(k, t),
        &mut clock,
    )
    .expect("load static");

    // maxiter 50, disthresh 1e-4 (Fig. 3 lines 10-13).
    let cfg = IterConfig::new("pagerank", 4, 50).with_distance_threshold(1e-4);
    let out = runner
        .run(&job, &cfg, "/pr/state", "/pr/static", "/pr/out", &[])
        .expect("run");

    println!(
        "PageRank converged after {} iterations ({} of virtual time)",
        out.iterations, out.report.finished
    );

    // Cross-check against a sequential power iteration.
    let reference = {
        let mut rank = vec![1.0 / n as f64; n as usize];
        for _ in 0..out.iterations {
            let mut next = vec![0.15 / n as f64; n as usize];
            for u in 0..n as u32 {
                let outl = graph.neighbors(u);
                if !outl.is_empty() {
                    let share = 0.85 * rank[u as usize] / outl.len() as f64;
                    for &v in outl {
                        next[v as usize] += share;
                    }
                }
            }
            rank = next;
        }
        rank
    };
    let max_err = out
        .final_state
        .iter()
        .map(|(k, v)| (v - reference[*k as usize]).abs())
        .fold(0.0f64, f64::max);
    println!("max |engine - reference| = {max_err:.3e}");
    assert!(max_err < 1e-12);

    let mut top: Vec<_> = out.final_state.clone();
    top.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("top pages: {:?}", &top[..5.min(top.len())]);
}
