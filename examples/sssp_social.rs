//! Social-network shortest paths with fault tolerance.
//!
//! Mirrors the paper's Facebook experiment: a weighted interaction
//! graph (log-normal weights = interaction frequency), single-source
//! shortest path from a seed user, run to convergence — then the same
//! run with a scripted worker failure, demonstrating checkpoint-based
//! recovery producing identical distances.
//!
//! Run with: `cargo run --release --example sssp_social`

use imapreduce::{FailureEvent, IterConfig};
use imr_algorithms::sssp::{self, SsspIter};
use imr_algorithms::testutil::imr_runner_on;
use imr_graph::dataset;
use imr_simcluster::{ClusterSpec, NodeId};

fn main() {
    // A 1% sample of the paper's Facebook graph row (Table 1).
    let graph = dataset("Facebook").expect("catalog").generate(0.01);
    println!(
        "Facebook-like graph: {} users, {} interaction edges",
        graph.num_nodes(),
        graph.num_edges()
    );

    // Clean run, checkpointing every 3 iterations.
    let runner = imr_runner_on(ClusterSpec::local(4));
    let cfg = IterConfig::new("sssp", 4, 40)
        .with_distance_threshold(1e-9)
        .with_checkpoint_interval(3);
    sssp::load_sssp_imr(&runner, &graph, 0, 4, "/s/state", "/s/static").expect("load");
    let clean = runner
        .run(&SsspIter, &cfg, "/s/state", "/s/static", "/s/out", &[])
        .expect("clean run");
    println!(
        "clean run:  {} iterations, finished at {}",
        clean.iterations, clean.report.finished
    );

    // Same computation, but node 2 dies after iteration 5.
    let runner2 = imr_runner_on(ClusterSpec::local(4));
    sssp::load_sssp_imr(&runner2, &graph, 0, 4, "/s/state", "/s/static").expect("load");
    let failures = [FailureEvent {
        node: NodeId(2),
        at_iteration: 5,
    }];
    let failed = runner2
        .run(
            &SsspIter,
            &cfg,
            "/s/state",
            "/s/static",
            "/s/out",
            &failures,
        )
        .expect("failure run");
    println!(
        "failed run: {} iterations, {} recovery, finished at {}",
        failed.iterations, failed.recoveries, failed.report.finished
    );

    assert_eq!(
        clean.final_state, failed.final_state,
        "recovery must be exact"
    );
    let reachable = clean
        .final_state
        .iter()
        .filter(|(_, d)| d.is_finite())
        .count();
    println!(
        "distances identical; {} of {} users reachable from the seed",
        reachable,
        graph.num_nodes()
    );

    // Sanity-check against Dijkstra.
    let truth = sssp::reference_sssp(&graph, 0);
    for (k, d) in &clean.final_state {
        let e = truth[*k as usize];
        assert!((d - e).abs() < 1e-9 || (d.is_infinite() && e.is_infinite()));
    }
    println!("verified against Dijkstra ground truth");
}
