//! Clustering music listeners by taste (paper §5.1) — the one2all
//! broadcast workload with auxiliary convergence detection (§5.3).
//!
//! Builds a Last.fm-like preference data set (each user a preference
//! vector), clusters it with K-means under iMapReduce, and compares:
//! plain fixed-iteration run, run with map-side Combiner, and run with
//! the parallel auxiliary convergence-detection phase.
//!
//! Run with: `cargo run --release --example kmeans_lastfm`

use imapreduce::IterConfig;
use imr_algorithms::kmeans;
use imr_algorithms::testutil::imr_runner_on;
use imr_graph::generate_points;
use imr_simcluster::ClusterSpec;

fn main() {
    let users = 3_000;
    let dims = 24;
    let k = 10;
    let points = generate_points(users, dims, k, 42);
    println!("clustering {users} listeners with {dims}-d taste vectors into {k} clusters");

    // Plain run, fixed 10 iterations (Fig. 16 setup).
    let r1 = imr_runner_on(ClusterSpec::local(4));
    let cfg = IterConfig::new("kmeans", 4, 10).with_one2all();
    let plain = kmeans::run_kmeans_imr(&r1, &points, k, &cfg, false).expect("plain");
    println!(
        "plain:     10 iterations in {} (shuffled {} bytes)",
        plain.report.finished,
        plain.report.metrics.shuffle_remote_bytes + plain.report.metrics.shuffle_local_bytes
    );

    // With the Combiner (paper §5.1.3: ~23-26% faster).
    let r2 = imr_runner_on(ClusterSpec::local(4));
    let combined = kmeans::run_kmeans_imr(&r2, &points, k, &cfg, true).expect("combiner");
    println!(
        "combiner:  10 iterations in {} (shuffled {} bytes, {:.0}% time saved)",
        combined.report.finished,
        combined.report.metrics.shuffle_remote_bytes + combined.report.metrics.shuffle_local_bytes,
        100.0
            * (1.0 - combined.report.finished.as_secs_f64() / plain.report.finished.as_secs_f64())
    );

    // Identical centroids either way.
    for (a, b) in plain.final_state.iter().zip(&combined.final_state) {
        assert_eq!(a.0, b.0);
        for (x, y) in a.1 .0.iter().zip(&b.1 .0) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    // With auxiliary convergence detection (Fig. 20 setup): stop as
    // soon as centroids stop moving, detected off the critical path.
    let r3 = imr_runner_on(ClusterSpec::local(4));
    let cfg_aux = IterConfig::new("kmeans-aux", 4, 30).with_one2all();
    let aux = kmeans::run_kmeans_imr_aux(&r3, &points, k, &cfg_aux, 1e-6).expect("aux");
    println!(
        "auxiliary: converged after {} iterations in {} (movement {:.2e})",
        aux.iterations,
        aux.report.finished,
        aux.aux_values.last().copied().unwrap_or(f64::NAN)
    );

    // Validate against the sequential Lloyd reference.
    let reference = kmeans::reference_kmeans(&points, k, 10);
    for ((ka, (ca, _)), (kb, (cb, _))) in plain.final_state.iter().zip(&reference) {
        assert_eq!(ka, kb);
        for (x, y) in ca.iter().zip(cb) {
            assert!((x - y).abs() < 1e-9);
        }
    }
    println!("centroids verified against sequential Lloyd iteration");
}
