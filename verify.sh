#!/usr/bin/env bash
# Full local verification: format, lints, release build, tests.
set -euo pipefail
cd "$(dirname "$0")"

cargo fmt --all --check
cargo clippy --workspace --all-targets -- -D warnings
cargo build --release
cargo test -q --workspace
# Fault-tolerance scenarios spawn real worker threads and recover from
# injected failures; run them serially under a timeout so a recovery
# regression shows up as a clean failure, never a hung CI job. The
# native crate's own suite covers the watchdog/migration monitor the
# same way.
timeout 600 cargo test -q --test fault_tolerance -- --test-threads=1
timeout 600 cargo test -q -p imr-native -- --test-threads=1
echo "verify: all checks passed"
