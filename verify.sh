#!/usr/bin/env bash
# Full local verification: format, lints, release build, tests.
set -euo pipefail
cd "$(dirname "$0")"

cargo fmt --all --check
cargo clippy --workspace --all-targets -- -D warnings
cargo build --release
cargo test -q --workspace
echo "verify: all checks passed"
