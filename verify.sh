#!/usr/bin/env bash
# Local verification, shared verbatim by CI: every job in
# .github/workflows/ci.yml invokes exactly one subcommand of this
# script, so the pipeline can never drift from what `./verify.sh`
# checks on a developer machine.
#
#   ./verify.sh            # everything (fmt lint build test faults bench …)
#   ./verify.sh fmt        # rustfmt check
#   ./verify.sh lint       # clippy, warnings denied
#   ./verify.sh build      # release build of the whole workspace
#   ./verify.sh test       # debug test suite + release cross-engine suite
#   ./verify.sh faults     # fault-injection suites, serial, under timeout
#   ./verify.sh bench      # smoke-run every experiment binary at tiny size
#   ./verify.sh bench --record   # …and record BENCH_<date>.json at repo root
#   ./verify.sh bench --compare BENCH_<date>.json
#                          # …and diff per-bin wall-clock vs that record,
#                          # failing past the ±25% band (warn-only in CI)
#   ./verify.sh trace      # tracing suites + trace_timeline smoke-run
#   ./verify.sh service    # job-service suites, serial, + CLI smoke
#   ./verify.sh delta      # delta-accumulative suites, serial, under timeout
#   ./verify.sh chaos      # wire-robustness + network-chaos suites, serial
#   ./verify.sh incremental  # incremental-computation suites, serial
#   ./verify.sh telemetry  # telemetry suites + live exposition smoke
#   ./verify.sh drift      # verify.sh subcommands <-> CI jobs bijection
set -euo pipefail
cd "$(dirname "$0")"

cmd_fmt() {
  cargo fmt --all --check
}

cmd_lint() {
  cargo clippy --workspace --all-targets -- -D warnings
}

cmd_build() {
  cargo build --release --workspace
}

cmd_test() {
  cargo test -q --workspace
  # The cross-engine exactness suite again under -O: the TCP
  # multi-process transport and the channel fabric must stay
  # bit-identical to the simulation engine with optimized codegen and
  # release-build worker binaries too.
  cargo test -q --release --test cross_engine
}

cmd_faults() {
  # Fault-tolerance scenarios spawn real worker threads and real worker
  # OS processes, then recover from injected kills/hangs/crashes; run
  # them serially under a timeout so a recovery regression shows up as
  # a clean failure, never a hung CI job. The native crate's own suite
  # covers the watchdog/migration monitor the same way.
  timeout 600 cargo test -q --test fault_tolerance -- --test-threads=1
  timeout 600 cargo test -q -p imr-native -- --test-threads=1
}

# Smoke-run each experiment binary at tiny scale into a scratch
# directory, then check every emitted results/*.json carries the keys
# the plotting/readme tooling relies on. With --record, additionally
# write BENCH_<date>.json at the repo root: per-binary host seconds for
# the pinned matrix plus the job-service throughput figure, so the perf
# trajectory the ROADMAP tracks has one committed data point per run.
# With --compare <BENCH_<date>.json>, diff this run's per-bin seconds
# against that record and exit nonzero if any bin drifted past ±25% —
# CI runs the compare step warn-only because shared hosts are noisy,
# but the deltas land in the log either way.
cmd_bench() {
  local record="" compare=""
  while [ "$#" -gt 0 ]; do
    case "$1" in
      --record) record=1; shift ;;
      --compare)
        compare="${2:-}"
        [ -n "$compare" ] \
          || { echo "bench: --compare needs a BENCH_<date>.json path" >&2; exit 2; }
        shift 2
        ;;
      *) echo "bench: unknown flag $1" >&2; exit 2 ;;
    esac
  done
  if [ -n "$compare" ] && [ ! -f "$compare" ]; then
    echo "bench-compare: baseline $compare not found" >&2
    exit 1
  fi
  cargo build --release --workspace
  local out
  out=$(mktemp -d)
  # The RETURN trap would fire again for the caller's return (where the
  # local is gone), so it removes itself after cleaning up.
  trap 'rm -rf "${out:-}"; trap - RETURN' RETURN
  local bins=(
    table1 table2 fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12
    fig13 fig14 fig16 fig18 fig20 ablation
    native_scaling native_recovery native_balance native_transport
    native_delta native_chaos native_incremental jobs_throughput
  )
  local rows=()
  declare -A secs_by
  for bin in "${bins[@]}"; do
    echo "bench-smoke: $bin"
    case "$bin" in
      # The balancer asserts an observed migration, which needs enough
      # compute per iteration to register on the busy EWMA; run it at
      # its default size instead of the tiny smoke size.
      native_balance) flags=(--scale 0.02 --iters 12) ;;
      *) flags=(--scale 0.002 --iters 2) ;;
    esac
    local t0 t1 secs
    t0=$(date +%s%3N)
    timeout 600 "target/release/$bin" "${flags[@]}" --out "$out" > /dev/null
    t1=$(date +%s%3N)
    secs=$(awk "BEGIN{printf \"%.3f\", ($t1 - $t0) / 1000}")
    rows+=("    \"$bin\": $secs")
    secs_by[$bin]=$secs
  done
  local n=0
  for json in "$out"/results/*.json; do
    n=$((n + 1))
    # A bin that emits malformed JSON must fail the run here, loudly —
    # never survive into a half-written BENCH record below.
    jq empty "$json" 2> /dev/null \
      || { echo "bench-smoke: $json is not valid JSON" >&2; exit 1; }
    for key in '"id"' '"title"' '"x_label"' '"y_label"' '"series"' '"notes"'; do
      grep -q "$key" "$json" \
        || { echo "bench-smoke: $json is missing $key" >&2; exit 1; }
    done
  done
  [ "$n" -ge "${#bins[@]}" ] \
    || { echo "bench-smoke: expected >=${#bins[@]} artifacts, got $n" >&2; exit 1; }
  echo "bench-smoke: $n artifacts, all keys present"
  if [ -n "$record" ]; then
    local stamp rec i
    stamp=$(date +%F)
    rec="BENCH_${stamp}.json"
    # Assemble into the scratch dir and validate before moving into
    # place, so a malformed embed can never leave a partial BENCH file
    # at the repo root.
    {
      echo "{"
      echo "  \"date\": \"$stamp\","
      echo "  \"commit\": \"$(git rev-parse --short HEAD 2>/dev/null || echo unknown)\","
      echo "  \"matrix\": \"smoke (--scale 0.002 --iters 2; native_balance 0.02/12)\","
      echo "  \"host_seconds\": {"
      for i in "${!rows[@]}"; do
        if [ "$i" -lt $((${#rows[@]} - 1)) ]; then
          echo "${rows[$i]},"
        else
          echo "${rows[$i]}"
        fi
      done
      echo "  },"
      echo "  \"jobs_throughput\": $(sed 's/^/  /' "$out/results/jobs_throughput.json" | sed '1s/^  //')"
      echo "}"
    } > "$out/$rec"
    jq empty "$out/$rec" 2> /dev/null \
      || { echo "bench-record: assembled $rec is not valid JSON, refusing to write it" >&2; exit 1; }
    mv "$out/$rec" "$rec"
    echo "bench-record: wrote $rec"
  fi
  if [ -n "$compare" ]; then
    local fail=0 prior now delta
    for bin in "${bins[@]}"; do
      prior=$(jq -r --arg b "$bin" '.host_seconds[$b] // empty' "$compare")
      if [ -z "$prior" ]; then
        echo "bench-compare: $bin absent from $compare (new bin?), skipping"
        continue
      fi
      now="${secs_by[$bin]}"
      delta=$(awk "BEGIN{printf \"%+.1f\", ($now - $prior) * 100 / $prior}")
      if awk "BEGIN{exit !(($now - $prior) > 0.25 * $prior || ($prior - $now) > 0.25 * $prior)}"; then
        echo "bench-compare: $bin ${prior}s -> ${now}s (${delta}%)  ** outside the ±25% band **"
        fail=1
      else
        echo "bench-compare: $bin ${prior}s -> ${now}s (${delta}%)"
      fi
    done
    [ "$fail" = 0 ] \
      || { echo "bench-compare: wall-clock drifted past ±25% vs $compare" >&2; exit 1; }
    echo "bench-compare: all bins within ±25% of $compare"
  fi
}

# The tracing subsystem end to end: the trace crate's unit suite, the
# cross-engine trace determinism / flight-recorder suite, and a
# smoke-run of the trace_timeline binary whose artifacts must carry the
# keys the timeline tooling relies on.
cmd_trace() {
  cargo test -q -p imr-trace
  timeout 600 cargo test -q --test tracing -- --test-threads=1
  cargo build --release -p imr-bench --bin trace_timeline
  local out
  out=$(mktemp -d)
  trap 'rm -rf "${out:-}"; trap - RETURN' RETURN
  timeout 600 target/release/trace_timeline --scale 0.005 --iters 4 --out "$out" > /dev/null
  grep -q '"traceEvents"' "$out/results/trace_timeline.chrome.json" \
    || { echo "trace-smoke: chrome trace missing traceEvents" >&2; exit 1; }
  grep -q '"async_overlap"' "$out/results/trace_timeline.jsonl" \
    || { echo "trace-smoke: jsonl summary missing async_overlap" >&2; exit 1; }
  grep -q '"mode":"sync"' "$out/results/trace_timeline.jsonl" \
    || { echo "trace-smoke: jsonl summary missing sync mode line" >&2; exit 1; }
  grep -q 'fault counters' "$out/results/trace_timeline.json" \
    || { echo "trace-smoke: figure artifact missing fault counters" >&2; exit 1; }
  echo "trace-smoke: artifacts present, keys intact"
}

# The multi-tenant job-service layer end to end: the jobs crate's unit
# suite, the integration suite (20-job stress, coordinator kill +
# bit-identical resume, DLQ, priority, worker drain/disconnect) run
# serially under a timeout because it spawns real worker processes, and
# the CLI drivers whose exit codes assert resume fidelity and DLQ
# capture.
cmd_service() {
  timeout 600 cargo test -q -p imr-jobs
  timeout 900 cargo test -q --release --test job_service -- --test-threads=1
  cargo build --release --bin imr-jobs --bin imr-worker
  timeout 600 target/release/imr-jobs resume > /dev/null
  timeout 600 target/release/imr-jobs dlq > /dev/null
  timeout 600 target/release/imr-jobs submit > /dev/null
  echo "service: suites + CLI smoke passed"
}

# The barrier-free delta-accumulative mode end to end (DESIGN.md §11):
# the core delta-store/config units, the per-algorithm accumulative
# fixpoint tests, bench counter-reset hygiene, cross-engine exactness
# (sim / channel / TCP bit-identity, release codegen), scheduling and
# validation properties, and kill/hang recovery mid-delta-propagation.
# Serial under timeouts: the fault suites spawn real worker threads and
# processes, so a regression must fail cleanly, never hang CI.
cmd_delta() {
  timeout 600 cargo test -q -p imapreduce accum -- --test-threads=1
  timeout 600 cargo test -q -p imr-algorithms accumulative -- --test-threads=1
  timeout 600 cargo test -q -p imr-bench --test metrics_reset -- --test-threads=1
  timeout 900 cargo test -q --release --test cross_engine delta_ -- --test-threads=1
  timeout 600 cargo test -q --test properties delta_ -- --test-threads=1
  timeout 900 cargo test -q --test fault_tolerance delta_ -- --test-threads=1
  echo "delta: accumulative-mode suites passed"
}

# The hardened wire protocol end to end (DESIGN.md §12): the net
# crate's frame/CRC/policy/chaos units and proptest robustness suite,
# then the seeded network-chaos matrix — every TCP workload must stay
# bit-identical to its clean run under injected drops, bit flips,
# duplicates and resets, and budget exhaustion must dead-letter with a
# typed error. Serial under timeouts: the chaos suite spawns real
# worker processes and tears their connections down on purpose.
cmd_chaos() {
  timeout 600 cargo test -q -p imr-net
  timeout 900 cargo test -q --release --test chaos -- --test-threads=1
  echo "chaos: wire-robustness suites passed"
}

# Incremental iterative computation end to end (DESIGN.md §13): the
# core delta/planner/fixpoint-store units, the per-algorithm harness
# fixtures, cross-engine equivalence of warm re-convergence vs cold
# recompute (sim / channel / TCP, with the kill-mid-incremental replay
# and the warm-start patch handshake), and the chained-delta
# composition property. Serial under timeouts: the kill suite spawns
# real worker threads and processes.
cmd_incremental() {
  timeout 600 cargo test -q -p imapreduce incremental -- --test-threads=1
  timeout 600 cargo test -q -p imr-algorithms incremental -- --test-threads=1
  timeout 900 cargo test -q --release --test incremental -- --test-threads=1
  timeout 600 cargo test -q --test properties incremental_ -- --test-threads=1
  echo "incremental: delta/warm-start suites passed"
}

# The live telemetry pipeline end to end (DESIGN.md §14): the
# telemetry crate's unit suite, then the cross-engine integration
# suite (bit-identical sim series, per-phase count agreement across
# sim/channel/TCP, histogram merge algebra, exactly-one-generation-gap
# after kill/rollback) — serial, it spawns real worker processes.
# Then a live exposition smoke: a 20-job jobs_throughput batch runs
# with the embedded HTTP endpoint enabled while curl scrapes /metrics
# (the Prometheus text must parse and carry the expected families) and
# imr-stat renders one snapshot from the same endpoint.
cmd_telemetry() {
  cargo test -q -p imr-telemetry
  timeout 900 cargo test -q --release --test telemetry -- --test-threads=1
  cargo build --release -p imr-bench --bin jobs_throughput
  cargo build --release --bin imr-stat
  local out addr bg ok i fam
  out=$(mktemp -d)
  trap 'rm -rf "${out:-}"; trap - RETURN' RETURN
  addr="127.0.0.1:9642"
  IMR_TELEMETRY_ADDR="$addr" timeout 600 target/release/jobs_throughput \
    --scale 0.8333 --iters 2500 --out "$out" > "$out/jobs.log" 2>&1 &
  bg=$!
  ok=""
  for i in $(seq 1 600); do
    if curl -sf --max-time 2 "http://$addr/metrics" > "$out/metrics.txt" 2> /dev/null \
      && target/release/imr-stat --addr "$addr" --once > "$out/stat.txt" 2> /dev/null; then
      ok=1
      break
    fi
    kill -0 "$bg" 2> /dev/null || break
    sleep 0.05
  done
  wait "$bg" \
    || { echo "telemetry: jobs_throughput failed" >&2; cat "$out/jobs.log" >&2; exit 1; }
  [ -n "$ok" ] \
    || { echo "telemetry: no scrape landed while the batch was live" >&2; exit 1; }
  for fam in imr_samples_total imr_iteration imr_iteration_rate imr_queue_len \
    imr_inflight_slots imr_phase_latency_nanos_bucket imr_phase_p50_nanos \
    imr_phase_p99_nanos; do
    grep -q "^$fam" "$out/metrics.txt" \
      || { echo "telemetry: scrape is missing the $fam family" >&2; exit 1; }
  done
  # Every sample line must parse as Prometheus text format:
  # name{labels} value, with numeric values.
  if grep -Ev '^(#|$)' "$out/metrics.txt" \
    | grep -Evq '^[a-z_][a-z0-9_]*(\{[^}]*\})? -?[0-9][0-9eE.+-]*$'; then
    echo "telemetry: exposition lines failed Prometheus text-format parse:" >&2
    grep -Ev '^(#|$)' "$out/metrics.txt" \
      | grep -Ev '^[a-z_][a-z0-9_]*(\{[^}]*\})? -?[0-9][0-9eE.+-]*$' >&2
    exit 1
  fi
  grep -q 'jobs @' "$out/stat.txt" \
    || { echo "telemetry: imr-stat rendered no job table" >&2; cat "$out/stat.txt" >&2; exit 1; }
  echo "telemetry: suites + live exposition smoke passed"
}

# The anti-drift guard: every cmd_* subcommand of this script (except
# the `all` aggregate) must be invoked by .github/workflows/ci.yml, and
# every `./verify.sh <sub>` CI invocation must name a real subcommand.
# Cheap on purpose — no cargo involved — so CI runs it on every push.
cmd_drift() {
  local subs jobs
  subs=$(grep -o '^cmd_[a-z_]*' verify.sh | sed 's/^cmd_//' | grep -v '^all$' | sort -u)
  jobs=$(grep -o 'run: \./verify\.sh [a-z_]*' .github/workflows/ci.yml | awk '{print $3}' | sort -u)
  if [ "$subs" != "$jobs" ]; then
    echo "drift: verify.sh subcommands and CI invocations differ:" >&2
    diff <(echo "$subs") <(echo "$jobs") >&2 || true
    echo "drift: left column is verify.sh, right column is ci.yml" >&2
    exit 1
  fi
  echo "drift: verify.sh and ci.yml agree on $(echo "$subs" | wc -l) subcommands"
}

cmd_all() {
  cmd_fmt
  cmd_lint
  cmd_build
  cmd_test
  cmd_faults
  cmd_bench
  cmd_trace
  cmd_service
  cmd_delta
  cmd_chaos
  cmd_incremental
  cmd_telemetry
  cmd_drift
}

case "${1:-all}" in
  fmt | lint | build | test | faults | bench | trace | service | delta | chaos | incremental | telemetry | drift | all)
    "cmd_${1:-all}" "${@:2}"
    ;;
  *)
    echo "usage: $0 [fmt|lint|build|test|faults|bench|trace|service|delta|chaos|incremental|telemetry|drift|all] [--record] [--compare FILE]" >&2
    exit 2
    ;;
esac
echo "verify: ${1:-all} passed"
