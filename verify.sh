#!/usr/bin/env bash
# Local verification, shared verbatim by CI: every job in
# .github/workflows/ci.yml invokes exactly one subcommand of this
# script, so the pipeline can never drift from what `./verify.sh`
# checks on a developer machine.
#
#   ./verify.sh            # everything (fmt lint build test faults bench …)
#   ./verify.sh fmt        # rustfmt check
#   ./verify.sh lint       # clippy, warnings denied
#   ./verify.sh build      # release build of the whole workspace
#   ./verify.sh test       # debug test suite + release cross-engine suite
#   ./verify.sh faults     # fault-injection suites, serial, under timeout
#   ./verify.sh bench      # smoke-run every experiment binary at tiny size
#   ./verify.sh bench --record   # …and record BENCH_<date>.json at repo root
#   ./verify.sh trace      # tracing suites + trace_timeline smoke-run
#   ./verify.sh service    # job-service suites, serial, + CLI smoke
#   ./verify.sh delta      # delta-accumulative suites, serial, under timeout
#   ./verify.sh chaos      # wire-robustness + network-chaos suites, serial
#   ./verify.sh incremental  # incremental-computation suites, serial
#   ./verify.sh drift      # verify.sh subcommands <-> CI jobs bijection
set -euo pipefail
cd "$(dirname "$0")"

cmd_fmt() {
  cargo fmt --all --check
}

cmd_lint() {
  cargo clippy --workspace --all-targets -- -D warnings
}

cmd_build() {
  cargo build --release --workspace
}

cmd_test() {
  cargo test -q --workspace
  # The cross-engine exactness suite again under -O: the TCP
  # multi-process transport and the channel fabric must stay
  # bit-identical to the simulation engine with optimized codegen and
  # release-build worker binaries too.
  cargo test -q --release --test cross_engine
}

cmd_faults() {
  # Fault-tolerance scenarios spawn real worker threads and real worker
  # OS processes, then recover from injected kills/hangs/crashes; run
  # them serially under a timeout so a recovery regression shows up as
  # a clean failure, never a hung CI job. The native crate's own suite
  # covers the watchdog/migration monitor the same way.
  timeout 600 cargo test -q --test fault_tolerance -- --test-threads=1
  timeout 600 cargo test -q -p imr-native -- --test-threads=1
}

# Smoke-run each experiment binary at tiny scale into a scratch
# directory, then check every emitted results/*.json carries the keys
# the plotting/readme tooling relies on. With --record, additionally
# write BENCH_<date>.json at the repo root: per-binary host seconds for
# the pinned matrix plus the job-service throughput figure, so the perf
# trajectory the ROADMAP tracks has one committed data point per run.
cmd_bench() {
  local record="${1:-}"
  cargo build --release --workspace
  local out
  out=$(mktemp -d)
  # The RETURN trap would fire again for the caller's return (where the
  # local is gone), so it removes itself after cleaning up.
  trap 'rm -rf "${out:-}"; trap - RETURN' RETURN
  local bins=(
    table1 table2 fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12
    fig13 fig14 fig16 fig18 fig20 ablation
    native_scaling native_recovery native_balance native_transport
    native_delta native_chaos native_incremental jobs_throughput
  )
  local rows=()
  for bin in "${bins[@]}"; do
    echo "bench-smoke: $bin"
    case "$bin" in
      # The balancer asserts an observed migration, which needs enough
      # compute per iteration to register on the busy EWMA; run it at
      # its default size instead of the tiny smoke size.
      native_balance) flags=(--scale 0.02 --iters 12) ;;
      *) flags=(--scale 0.002 --iters 2) ;;
    esac
    local t0 t1
    t0=$(date +%s%3N)
    timeout 600 "target/release/$bin" "${flags[@]}" --out "$out" > /dev/null
    t1=$(date +%s%3N)
    rows+=("    \"$bin\": $(awk "BEGIN{printf \"%.3f\", ($t1 - $t0) / 1000}")")
  done
  local n=0
  for json in "$out"/results/*.json; do
    n=$((n + 1))
    # A bin that emits malformed JSON must fail the run here, loudly —
    # never survive into a half-written BENCH record below.
    jq empty "$json" 2> /dev/null \
      || { echo "bench-smoke: $json is not valid JSON" >&2; exit 1; }
    for key in '"id"' '"title"' '"x_label"' '"y_label"' '"series"' '"notes"'; do
      grep -q "$key" "$json" \
        || { echo "bench-smoke: $json is missing $key" >&2; exit 1; }
    done
  done
  [ "$n" -ge "${#bins[@]}" ] \
    || { echo "bench-smoke: expected >=${#bins[@]} artifacts, got $n" >&2; exit 1; }
  echo "bench-smoke: $n artifacts, all keys present"
  if [ "$record" = "--record" ]; then
    local stamp rec i
    stamp=$(date +%F)
    rec="BENCH_${stamp}.json"
    # Assemble into the scratch dir and validate before moving into
    # place, so a malformed embed can never leave a partial BENCH file
    # at the repo root.
    {
      echo "{"
      echo "  \"date\": \"$stamp\","
      echo "  \"commit\": \"$(git rev-parse --short HEAD 2>/dev/null || echo unknown)\","
      echo "  \"matrix\": \"smoke (--scale 0.002 --iters 2; native_balance 0.02/12)\","
      echo "  \"host_seconds\": {"
      for i in "${!rows[@]}"; do
        if [ "$i" -lt $((${#rows[@]} - 1)) ]; then
          echo "${rows[$i]},"
        else
          echo "${rows[$i]}"
        fi
      done
      echo "  },"
      echo "  \"jobs_throughput\": $(sed 's/^/  /' "$out/results/jobs_throughput.json" | sed '1s/^  //')"
      echo "}"
    } > "$out/$rec"
    jq empty "$out/$rec" 2> /dev/null \
      || { echo "bench-record: assembled $rec is not valid JSON, refusing to write it" >&2; exit 1; }
    mv "$out/$rec" "$rec"
    echo "bench-record: wrote $rec"
  fi
}

# The tracing subsystem end to end: the trace crate's unit suite, the
# cross-engine trace determinism / flight-recorder suite, and a
# smoke-run of the trace_timeline binary whose artifacts must carry the
# keys the timeline tooling relies on.
cmd_trace() {
  cargo test -q -p imr-trace
  timeout 600 cargo test -q --test tracing -- --test-threads=1
  cargo build --release -p imr-bench --bin trace_timeline
  local out
  out=$(mktemp -d)
  trap 'rm -rf "${out:-}"; trap - RETURN' RETURN
  timeout 600 target/release/trace_timeline --scale 0.005 --iters 4 --out "$out" > /dev/null
  grep -q '"traceEvents"' "$out/results/trace_timeline.chrome.json" \
    || { echo "trace-smoke: chrome trace missing traceEvents" >&2; exit 1; }
  grep -q '"async_overlap"' "$out/results/trace_timeline.jsonl" \
    || { echo "trace-smoke: jsonl summary missing async_overlap" >&2; exit 1; }
  grep -q '"mode":"sync"' "$out/results/trace_timeline.jsonl" \
    || { echo "trace-smoke: jsonl summary missing sync mode line" >&2; exit 1; }
  grep -q 'fault counters' "$out/results/trace_timeline.json" \
    || { echo "trace-smoke: figure artifact missing fault counters" >&2; exit 1; }
  echo "trace-smoke: artifacts present, keys intact"
}

# The multi-tenant job-service layer end to end: the jobs crate's unit
# suite, the integration suite (20-job stress, coordinator kill +
# bit-identical resume, DLQ, priority, worker drain/disconnect) run
# serially under a timeout because it spawns real worker processes, and
# the CLI drivers whose exit codes assert resume fidelity and DLQ
# capture.
cmd_service() {
  timeout 600 cargo test -q -p imr-jobs
  timeout 900 cargo test -q --release --test job_service -- --test-threads=1
  cargo build --release --bin imr-jobs --bin imr-worker
  timeout 600 target/release/imr-jobs resume > /dev/null
  timeout 600 target/release/imr-jobs dlq > /dev/null
  timeout 600 target/release/imr-jobs submit > /dev/null
  echo "service: suites + CLI smoke passed"
}

# The barrier-free delta-accumulative mode end to end (DESIGN.md §11):
# the core delta-store/config units, the per-algorithm accumulative
# fixpoint tests, bench counter-reset hygiene, cross-engine exactness
# (sim / channel / TCP bit-identity, release codegen), scheduling and
# validation properties, and kill/hang recovery mid-delta-propagation.
# Serial under timeouts: the fault suites spawn real worker threads and
# processes, so a regression must fail cleanly, never hang CI.
cmd_delta() {
  timeout 600 cargo test -q -p imapreduce accum -- --test-threads=1
  timeout 600 cargo test -q -p imr-algorithms accumulative -- --test-threads=1
  timeout 600 cargo test -q -p imr-bench --test metrics_reset -- --test-threads=1
  timeout 900 cargo test -q --release --test cross_engine delta_ -- --test-threads=1
  timeout 600 cargo test -q --test properties delta_ -- --test-threads=1
  timeout 900 cargo test -q --test fault_tolerance delta_ -- --test-threads=1
  echo "delta: accumulative-mode suites passed"
}

# The hardened wire protocol end to end (DESIGN.md §12): the net
# crate's frame/CRC/policy/chaos units and proptest robustness suite,
# then the seeded network-chaos matrix — every TCP workload must stay
# bit-identical to its clean run under injected drops, bit flips,
# duplicates and resets, and budget exhaustion must dead-letter with a
# typed error. Serial under timeouts: the chaos suite spawns real
# worker processes and tears their connections down on purpose.
cmd_chaos() {
  timeout 600 cargo test -q -p imr-net
  timeout 900 cargo test -q --release --test chaos -- --test-threads=1
  echo "chaos: wire-robustness suites passed"
}

# Incremental iterative computation end to end (DESIGN.md §13): the
# core delta/planner/fixpoint-store units, the per-algorithm harness
# fixtures, cross-engine equivalence of warm re-convergence vs cold
# recompute (sim / channel / TCP, with the kill-mid-incremental replay
# and the warm-start patch handshake), and the chained-delta
# composition property. Serial under timeouts: the kill suite spawns
# real worker threads and processes.
cmd_incremental() {
  timeout 600 cargo test -q -p imapreduce incremental -- --test-threads=1
  timeout 600 cargo test -q -p imr-algorithms incremental -- --test-threads=1
  timeout 900 cargo test -q --release --test incremental -- --test-threads=1
  timeout 600 cargo test -q --test properties incremental_ -- --test-threads=1
  echo "incremental: delta/warm-start suites passed"
}

# The anti-drift guard: every cmd_* subcommand of this script (except
# the `all` aggregate) must be invoked by .github/workflows/ci.yml, and
# every `./verify.sh <sub>` CI invocation must name a real subcommand.
# Cheap on purpose — no cargo involved — so CI runs it on every push.
cmd_drift() {
  local subs jobs
  subs=$(grep -o '^cmd_[a-z_]*' verify.sh | sed 's/^cmd_//' | grep -v '^all$' | sort -u)
  jobs=$(grep -o 'run: \./verify\.sh [a-z_]*' .github/workflows/ci.yml | awk '{print $3}' | sort -u)
  if [ "$subs" != "$jobs" ]; then
    echo "drift: verify.sh subcommands and CI invocations differ:" >&2
    diff <(echo "$subs") <(echo "$jobs") >&2 || true
    echo "drift: left column is verify.sh, right column is ci.yml" >&2
    exit 1
  fi
  echo "drift: verify.sh and ci.yml agree on $(echo "$subs" | wc -l) subcommands"
}

cmd_all() {
  cmd_fmt
  cmd_lint
  cmd_build
  cmd_test
  cmd_faults
  cmd_bench
  cmd_trace
  cmd_service
  cmd_delta
  cmd_chaos
  cmd_incremental
  cmd_drift
}

case "${1:-all}" in
  fmt | lint | build | test | faults | bench | trace | service | delta | chaos | incremental | drift | all)
    "cmd_${1:-all}" "${@:2}"
    ;;
  *)
    echo "usage: $0 [fmt|lint|build|test|faults|bench|trace|service|delta|chaos|incremental|drift|all] [--record]" >&2
    exit 2
    ;;
esac
echo "verify: ${1:-all} passed"
