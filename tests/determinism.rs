//! Reproducibility: the virtual timeline is a pure function of the
//! inputs — identical across repeated runs, engines included — and the
//! metrics snapshots match exactly.

use imapreduce::IterConfig;
use imr_algorithms::testutil::{imr_runner_on, mr_runner_on};
use imr_algorithms::{pagerank, sssp};
use imr_graph::dataset;
use imr_simcluster::{ClusterSpec, MetricsSnapshot, VInstant};

fn imr_run() -> (VInstant, Vec<VInstant>, MetricsSnapshot) {
    let g = dataset("Google").unwrap().generate(0.002);
    let r = imr_runner_on(ClusterSpec::ec2(10));
    let cfg = IterConfig::new("pr", 10, 5).with_distance_threshold(1e-7);
    let out = pagerank::run_pagerank_imr(&r, &g, &cfg).unwrap();
    (
        out.report.finished,
        out.report.iteration_done,
        out.report.metrics,
    )
}

fn mr_run() -> (VInstant, Vec<VInstant>, MetricsSnapshot) {
    let g = dataset("Google").unwrap().generate(0.002);
    let r = mr_runner_on(ClusterSpec::ec2(10));
    let out = pagerank::run_pagerank_mr(&r, &g, 10, 5, None).unwrap();
    (
        out.report.finished,
        out.report.iteration_done,
        out.report.metrics,
    )
}

#[test]
fn imapreduce_timeline_is_bit_reproducible() {
    assert_eq!(imr_run(), imr_run());
}

#[test]
fn mapreduce_timeline_is_bit_reproducible() {
    assert_eq!(mr_run(), mr_run());
}

#[test]
fn sssp_results_do_not_depend_on_cluster_size() {
    // Timing depends on the cluster; *data* must not.
    let g = dataset("DBLP").unwrap().generate(0.003);
    let mut results = Vec::new();
    for n in [2usize, 4, 8] {
        let r = imr_runner_on(ClusterSpec::local(n));
        let cfg = IterConfig::new("sssp", n, 5);
        let out = sssp::run_sssp_imr(&r, &g, 0, &cfg).unwrap();
        results.push(out.final_state);
    }
    assert_eq!(results[0], results[1]);
    assert_eq!(results[1], results[2]);
}

#[test]
fn sync_and_async_runs_share_straggler_patterns() {
    // The straggler model is keyed by (iteration, task), not wall
    // time, so the sync/async comparison is a paired experiment: the
    // async run can never be slower than sync by more than the hand-off
    // overhead.
    let g = dataset("DBLP").unwrap().generate(0.005);
    let run = |sync: bool| {
        let r = imr_runner_on(ClusterSpec::local(4));
        let mut cfg = IterConfig::new("sssp", 4, 8);
        if sync {
            cfg = cfg.with_sync_maps();
        }
        sssp::run_sssp_imr(&r, &g, 0, &cfg).unwrap().report.finished
    };
    let sync_t = run(true);
    let async_t = run(false);
    assert!(
        async_t <= sync_t,
        "async {async_t} slower than sync {sync_t}"
    );
}
