//! Reproducibility: the virtual timeline is a pure function of the
//! inputs — identical across repeated runs, engines included — and the
//! metrics snapshots match exactly.

use imapreduce::{FaultEvent, IterConfig, WatchdogConfig};
use imr_algorithms::pagerank::PageRankIter;
use imr_algorithms::testutil::{imr_runner_on, mr_runner_on};
use imr_algorithms::{pagerank, sssp};
use imr_graph::dataset;
use imr_simcluster::{ClusterSpec, MetricsSnapshot, NodeId, VInstant};

fn imr_run() -> (VInstant, Vec<VInstant>, MetricsSnapshot) {
    let g = dataset("Google").unwrap().generate(0.002);
    let r = imr_runner_on(ClusterSpec::ec2(10));
    let cfg = IterConfig::new("pr", 10, 5).with_distance_threshold(1e-7);
    let out = pagerank::run_pagerank_imr(&r, &g, &cfg).unwrap();
    (
        out.report.finished,
        out.report.iteration_done,
        out.report.metrics,
    )
}

fn mr_run() -> (VInstant, Vec<VInstant>, MetricsSnapshot) {
    let g = dataset("Google").unwrap().generate(0.002);
    let r = mr_runner_on(ClusterSpec::ec2(10));
    let out = pagerank::run_pagerank_mr(&r, &g, 10, 5, None).unwrap();
    (
        out.report.finished,
        out.report.iteration_done,
        out.report.metrics,
    )
}

#[test]
fn imapreduce_timeline_is_bit_reproducible() {
    assert_eq!(imr_run(), imr_run());
}

#[test]
fn mapreduce_timeline_is_bit_reproducible() {
    assert_eq!(mr_run(), mr_run());
}

/// The fault timeline is part of the pure function: a schedule mixing a
/// delay, a watchdog-detected hang and a kill shifts virtual time in a
/// bit-reproducible way — and strictly costs more virtual time than the
/// undisturbed run.
#[test]
fn faulted_timeline_is_bit_reproducible() {
    fn faulted_run(faults: &[FaultEvent]) -> (VInstant, Vec<VInstant>, MetricsSnapshot) {
        let g = dataset("Google").unwrap().generate(0.002);
        let r = imr_runner_on(ClusterSpec::ec2(10));
        let cfg = IterConfig::new("pr", 10, 6)
            .with_checkpoint_interval(2)
            .with_watchdog(WatchdogConfig::default());
        pagerank::load_pagerank_imr(&r, &g, 10, "/s", "/t").unwrap();
        let job = PageRankIter::new(g.num_nodes() as u64);
        let out = r.run_faults(&job, &cfg, "/s", "/t", "/o", faults).unwrap();
        (
            out.report.finished,
            out.report.iteration_done,
            out.report.metrics,
        )
    }
    let faults = [
        FaultEvent::Delay {
            node: NodeId(2),
            at_iteration: 2,
            millis: 40,
        },
        FaultEvent::Hang {
            node: NodeId(5),
            at_iteration: 3,
        },
        FaultEvent::Kill {
            node: NodeId(1),
            at_iteration: 5,
        },
    ];
    let a = faulted_run(&faults);
    let b = faulted_run(&faults);
    assert_eq!(a, b);
    let clean = faulted_run(&[]);
    assert!(a.0 > clean.0, "faults must cost virtual time");
}

#[test]
fn sssp_results_do_not_depend_on_cluster_size() {
    // Timing depends on the cluster; *data* must not.
    let g = dataset("DBLP").unwrap().generate(0.003);
    let mut results = Vec::new();
    for n in [2usize, 4, 8] {
        let r = imr_runner_on(ClusterSpec::local(n));
        let cfg = IterConfig::new("sssp", n, 5);
        let out = sssp::run_sssp_imr(&r, &g, 0, &cfg).unwrap();
        results.push(out.final_state);
    }
    assert_eq!(results[0], results[1]);
    assert_eq!(results[1], results[2]);
}

#[test]
fn sync_and_async_runs_share_straggler_patterns() {
    // The straggler model is keyed by (iteration, task), not wall
    // time, so the sync/async comparison is a paired experiment: the
    // async run can never be slower than sync by more than the hand-off
    // overhead.
    let g = dataset("DBLP").unwrap().generate(0.005);
    let run = |sync: bool| {
        let r = imr_runner_on(ClusterSpec::local(4));
        let mut cfg = IterConfig::new("sssp", 4, 8);
        if sync {
            cfg = cfg.with_sync_maps();
        }
        sssp::run_sssp_imr(&r, &g, 0, &cfg).unwrap().report.finished
    };
    let sync_t = run(true);
    let async_t = run(false);
    assert!(
        async_t <= sync_t,
        "async {async_t} slower than sync {sync_t}"
    );
}
