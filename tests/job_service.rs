//! Multi-tenant job-service integration: a queued fleet of jobs over
//! shared task slots, coordinator kill + durable resume, dead-letter
//! handling, priority ordering, and clean worker shutdown on drain or
//! coordinator disconnect.

use imr_jobs::{AlgoSpec, EngineSel, JobPhase, JobService, JobSpec, ResultRecord, ServiceConfig};
use imr_net::proto::{ToCoord, ToWorker, WorkerSetup};
use imr_net::{FrameReader, FrameWriter};
use imr_records::Codec;
use std::net::TcpListener;
use std::process::Command;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

fn worker_bin() -> &'static str {
    env!("CARGO_BIN_EXE_imr-worker")
}

/// The headline stress: twenty queued jobs contend for a four-slot
/// fleet across every algorithm and all three engines, and every one
/// of them must run to a journaled result.
#[test]
fn stress_twenty_jobs_over_four_slots() {
    let svc = JobService::new(
        ServiceConfig::default()
            .with_slots(4)
            .with_worker_bin(worker_bin()),
    );
    let mut ids = Vec::new();
    for i in 0..20u64 {
        let algo = match i % 4 {
            0 => AlgoSpec::Halve,
            1 => AlgoSpec::Sssp,
            2 => AlgoSpec::PageRank,
            _ => AlgoSpec::Kmeans,
        };
        // Two of the halve jobs exercise the socket transport with real
        // worker processes; the rest split between sim and threads.
        let engine = match i {
            4 | 12 => EngineSel::Tcp,
            i if i % 2 == 0 => EngineSel::Threads,
            _ => EngineSel::Sim,
        };
        let algo = if engine == EngineSel::Tcp {
            AlgoSpec::Halve
        } else {
            algo
        };
        let spec = JobSpec::new(format!("stress-{i}"), algo, engine, 40 + i)
            .with_scale(32)
            .with_tasks(1 + (i as usize % 2))
            .with_max_iters(4)
            .with_priority((i % 3) as u8);
        ids.push(svc.submit(spec).unwrap());
    }
    svc.run_until_idle().unwrap();

    let status = svc.status();
    assert_eq!(status.len(), 20);
    for row in &status {
        assert_eq!(
            row.phase,
            JobPhase::Completed,
            "job {} ({})",
            row.id,
            row.name
        );
        assert_eq!(row.attempts, 1, "job {} retried unexpectedly", row.id);
    }
    for &id in &ids {
        let rec = svc.result(id).unwrap().expect("journaled result");
        assert!(rec.iterations > 0);
        assert!(!rec.state.is_empty());
    }
    assert!(svc.dlq().unwrap().is_empty());
}

/// Kill the coordinator while at least three jobs hold slots, recover a
/// fresh one from the DFS journal, and require every resumed result to
/// be bit-identical to an uninterrupted control run.
#[test]
fn coordinator_kill_mid_fleet_resumes_bit_identical() {
    let batch: Vec<JobSpec> = (0..6u64)
        .map(|i| {
            let algo = match i % 3 {
                0 => AlgoSpec::Halve,
                1 => AlgoSpec::Sssp,
                _ => AlgoSpec::PageRank,
            };
            JobSpec::new(format!("kill-{i}"), algo, EngineSel::Threads, 300 + i)
                .with_scale(256)
                .with_tasks(2)
                .with_max_iters(10)
                .with_checkpoint_interval(2)
        })
        .collect();

    // Control run: same specs, never interrupted.
    let control = JobService::new(ServiceConfig::default().with_slots(6));
    let control_ids: Vec<_> = batch
        .iter()
        .map(|s| control.submit(s.clone()).unwrap())
        .collect();
    control.run_until_idle().unwrap();

    // Victim run: killed once >= 3 jobs are holding slots.
    let victim = Arc::new(JobService::new(ServiceConfig::default().with_slots(6)));
    let victim_ids: Vec<_> = batch
        .iter()
        .map(|s| victim.submit(s.clone()).unwrap())
        .collect();
    assert_eq!(victim_ids, control_ids);
    let runner = {
        let svc = Arc::clone(&victim);
        thread::spawn(move || svc.run_until_idle())
    };
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let running = victim
            .status()
            .iter()
            .filter(|s| s.phase == JobPhase::Running)
            .count();
        if running >= 3 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "fleet never reached 3 running jobs"
        );
        thread::sleep(Duration::from_millis(1));
    }
    victim.kill();
    runner.join().unwrap().unwrap();
    let unfinished = victim
        .status()
        .iter()
        .filter(|s| s.phase != JobPhase::Completed)
        .count();
    assert!(unfinished >= 1, "kill landed after every job finished");

    // A brand-new coordinator recovers the namespace and finishes the
    // interrupted jobs from their surviving checkpoints.
    let recovered = JobService::recover(
        victim.dfs().clone(),
        Arc::clone(victim.cluster()),
        Arc::clone(victim.metrics()),
        ServiceConfig::default().with_slots(6),
    )
    .unwrap();
    recovered.run_until_idle().unwrap();

    for &id in &control_ids {
        let want: ResultRecord = control.result(id).unwrap().expect("control result");
        let got = recovered.result(id).unwrap().expect("resumed result");
        assert_eq!(got, want, "job {id} resumed result diverged from control");
    }
}

/// A job that keeps failing exhausts `max_retries`, lands in the DLQ
/// with its attempt count and reason, and leaves a flight-recorder
/// artifact; a healthy neighbour is unaffected.
#[test]
fn retry_exhaustion_dead_letters_with_flight_artifact() {
    let svc = JobService::new(ServiceConfig::default());
    let poison = svc
        .submit(
            JobSpec::new("poison", AlgoSpec::PoisonPill, EngineSel::Threads, 9)
                .with_scale(16)
                .with_max_retries(2),
        )
        .unwrap();
    let healthy = svc
        .submit(JobSpec::new("healthy", AlgoSpec::Halve, EngineSel::Threads, 10).with_scale(16))
        .unwrap();
    svc.run_until_idle().unwrap();

    let status = svc.status();
    let p = status.iter().find(|s| s.id == poison).unwrap();
    assert_eq!(p.phase, JobPhase::DeadLettered);
    assert_eq!(p.attempts, 3, "initial attempt + 2 retries");
    let h = status.iter().find(|s| s.id == healthy).unwrap();
    assert_eq!(h.phase, JobPhase::Completed);
    assert!(svc.result(healthy).unwrap().is_some());
    assert!(svc.result(poison).unwrap().is_none());

    let dlq = svc.dlq().unwrap();
    assert_eq!(dlq.len(), 1);
    assert_eq!(dlq[0].id, poison);
    assert_eq!(dlq[0].attempts, 3);
    assert!(
        dlq[0].reason.contains("poison pill"),
        "reason: {}",
        dlq[0].reason
    );
    let flight = svc.dlq_flight(poison).unwrap().expect("flight artifact");
    assert!(
        flight.lines().count() > 0,
        "flight artifact should carry the job's trailing trace"
    );
}

/// With one serialized slot lane, the admission queue drains strictly
/// by priority: the highest-priority job finishes first even though it
/// was submitted last.
#[test]
fn priority_governs_admission_order() {
    let svc = JobService::new(ServiceConfig::default().with_slots(2));
    let mut submitted = Vec::new();
    for (i, prio) in [0u8, 5, 9].iter().enumerate() {
        let spec = JobSpec::new(
            format!("prio-{prio}"),
            AlgoSpec::Halve,
            EngineSel::Threads,
            70 + i as u64,
        )
        .with_scale(16)
        .with_tasks(2)
        .with_priority(*prio);
        submitted.push(svc.submit(spec).unwrap());
    }
    svc.run_until_idle().unwrap();
    // tasks == slots, so jobs run one at a time; completion order is
    // admission order: priority 9, then 5, then 0.
    let order = svc.completion_order();
    assert_eq!(order, vec![submitted[2], submitted[1], submitted[0]]);
}

/// Handshake a real `imr-worker` process, park it with a Setup, then
/// send the drain frame: the worker must exit 0 without reporting an
/// outcome.
#[test]
fn drained_worker_exits_cleanly_without_outcome() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let mut child = Command::new(worker_bin())
        .args([&addr, "0", "1", "9", "halve"])
        .spawn()
        .unwrap();
    let (sock, _) = listener.accept().unwrap();
    let mut reader = FrameReader::new(sock.try_clone().unwrap());
    let mut writer = FrameWriter::new(sock).unwrap();

    reader.expect_preamble().unwrap();
    let mut hello = reader.read().unwrap();
    match ToCoord::decode(&mut hello).unwrap() {
        ToCoord::Hello {
            pair,
            generation,
            job,
        } => {
            assert_eq!((pair, generation, job), (0, 1, 9));
        }
        other => panic!("expected Hello, got {other:?}"),
    }
    writer
        .write(&ToWorker::Setup(Box::new(dummy_setup())).to_bytes())
        .unwrap();
    writer.write(&ToWorker::Drain.to_bytes()).unwrap();

    // The worker may flush frames (beats, trace) before closing, but a
    // drained worker must never report an outcome.
    while let Ok(mut frame) = reader.read() {
        if let Ok(msg) = ToCoord::decode(&mut frame) {
            assert!(
                !matches!(msg, ToCoord::Outcome(_)),
                "drained worker reported an outcome: {msg:?}"
            );
        }
    }
    let status = wait_with_deadline(&mut child, Duration::from_secs(20));
    assert!(status.success(), "drained worker exited {status:?}");
}

/// A coordinator that vanishes after Setup (socket dropped, no drain
/// frame) must not strand the worker process: it exits cleanly instead
/// of hanging on the dead connection.
#[test]
fn worker_survives_coordinator_disconnect() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let mut child = Command::new(worker_bin())
        .args([&addr, "0", "1", "9", "halve"])
        .spawn()
        .unwrap();
    let (sock, _) = listener.accept().unwrap();
    let mut reader = FrameReader::new(sock.try_clone().unwrap());
    let mut writer = FrameWriter::new(sock).unwrap();

    reader.expect_preamble().unwrap();
    let mut hello = reader.read().unwrap();
    assert!(matches!(
        ToCoord::decode(&mut hello).unwrap(),
        ToCoord::Hello { .. }
    ));
    writer
        .write(&ToWorker::Setup(Box::new(dummy_setup())).to_bytes())
        .unwrap();
    drop(writer); // Coordinator dies without a word.
    drop(reader);

    let status = wait_with_deadline(&mut child, Duration::from_secs(20));
    assert!(status.success(), "disconnected worker exited {status:?}");
}

fn dummy_setup() -> WorkerSetup {
    WorkerSetup {
        job: 9,
        num_tasks: 1,
        epoch: 0,
        one2all: false,
        sync: false,
        distance_threshold: None,
        max_iterations: 4,
        checkpoint_interval: 0,
        num_state_parts: 1,
        state_dir: "/drain/in/state".into(),
        static_dir: "/drain/in/static".into(),
        output_dir: "/drain/out".into(),
        kills: vec![],
        hangs: vec![],
        delays: vec![],
        speed: 1.0,
        crash_after: None,
        accumulative: false,
        delta_batch: 0,
        check_every: 1,
        incremental: false,
    }
}

fn wait_with_deadline(
    child: &mut std::process::Child,
    deadline: Duration,
) -> std::process::ExitStatus {
    let start = Instant::now();
    loop {
        if let Some(status) = child.try_wait().unwrap() {
            return status;
        }
        if start.elapsed() > deadline {
            let _ = child.kill();
            let _ = child.wait();
            panic!("worker did not exit within {deadline:?}");
        }
        thread::sleep(Duration::from_millis(5));
    }
}
