//! Incremental iterative computation (i2MapReduce-style, DESIGN.md
//! §13) across every engine: the warm re-convergence after a
//! [`GraphDelta`] must equal a cold recompute on the mutated graph —
//! exactly for the min-lattice workloads (SSSP, connected components),
//! within the termination detector's residual for PageRank — and must
//! agree bit-for-bit between the virtual-time sim, the native channel
//! fabric and TCP worker processes. A kill mid-incremental-run replays
//! through the shared checkpoint/rollback supervisor to a bit-identical
//! outcome.

use imapreduce::{EngineError, FaultEvent, GraphDelta, IterConfig, IterEngine, PatchStats};
use imr_algorithms::concomp::ConCompIter;
use imr_algorithms::incremental::{
    converge_and_preserve, converge_cold, inc_dirs, max_abs_diff, patched_statics,
    run_incremental_ns, unweighted_statics, weighted_statics,
};
use imr_algorithms::pagerank::PageRankIter;
use imr_algorithms::sssp::SsspInc;
use imr_algorithms::testutil::{imr_runner, native_runner};
use imr_graph::dataset;
use imr_native::WorkerSpec;
use imr_simcluster::NodeId;
use std::collections::BTreeMap;

/// A spec launching this package's `imr-worker` binary with `job_args`.
fn worker_spec(job_args: &[&str]) -> WorkerSpec {
    WorkerSpec::new(
        env!("CARGO_BIN_EXE_imr-worker"),
        job_args.iter().map(|s| (*s).to_owned()).collect(),
    )
}

/// The node reaching the most others — the only interesting SSSP
/// source on a sparse directed sample (node 0 may have no out-edges).
fn best_source(g: &imr_graph::Graph) -> u32 {
    let n = g.num_nodes();
    (0..n as u32)
        .max_by_key(|&u| {
            let mut seen = vec![false; n];
            let mut stack = vec![u];
            seen[u as usize] = true;
            let mut count = 0usize;
            while let Some(x) = stack.pop() {
                count += 1;
                for &v in g.neighbors(x) {
                    if !seen[v as usize] {
                        seen[v as usize] = true;
                        stack.push(v);
                    }
                }
            }
            count
        })
        .unwrap()
}

/// Shortest-path-tree edges of the converged SSSP fixpoint: every
/// `(u, v, w)` with `dist[u] + w == dist[v]` witnesses `v`'s distance,
/// so removing or worsening one forces the planner to reset the keys
/// whose values flowed through it.
fn sssp_tree_edges(
    base: &BTreeMap<u32, Vec<(u32, f32)>>,
    fixpoint: &[(u32, f64)],
    source: u32,
) -> Vec<(u32, u32, f32)> {
    let dist: BTreeMap<u32, f64> = fixpoint.iter().copied().collect();
    let mut out = Vec::new();
    for (&u, adj) in base {
        let du = dist[&u];
        if !du.is_finite() {
            continue;
        }
        for &(v, w) in adj {
            if v != source && du + f64::from(w) == dist[&v] {
                out.push((u, v, w));
            }
        }
    }
    out
}

/// A mixed delta over the converged graph: one brand-new low-weight
/// shortcut, one removed witness (shortest-path-tree) edge, and one
/// worsened reweight of another witness edge.
fn sssp_delta(
    base: &BTreeMap<u32, Vec<(u32, f32)>>,
    fixpoint: &[(u32, f64)],
    source: u32,
    num_nodes: u32,
) -> GraphDelta {
    let tree = sssp_tree_edges(base, fixpoint, source);
    assert!(tree.len() >= 2, "fixpoint has too few witnessed edges");
    let mut delta = GraphDelta::new();
    delta
        .insert_edge(2, num_nodes - 1, 0.05)
        .remove_edge(tree[0].0, tree[0].1)
        .reweight_edge(tree[1].0, tree[1].1, 50.0);
    delta
}

/// SSSP: all three engines produce the same incremental fixpoint, the
/// same patch stats, and exactly the cold recompute on the mutated
/// graph.
#[test]
fn incremental_sssp_equivalent_across_engines_and_to_cold() {
    let g = dataset("DBLP").unwrap().generate(0.004);
    let source = best_source(&g);
    let job = SsspInc { source };
    let base = weighted_statics(&g);
    let cfg = IterConfig::new("isssp", 3, 300)
        .with_accumulative_mode()
        .with_distance_threshold(1e-9);

    let sim = imr_runner(3);
    let (cold0, fix) = converge_and_preserve(&sim, &job, &base, &cfg, "/i").unwrap();
    let delta = sssp_delta(&base, &cold0.final_state, source, g.num_nodes() as u32);
    let a = run_incremental_ns(&sim, &job, &cfg, &fix, "/i", &delta).unwrap();

    let nat = native_runner(3);
    let (_, fix_n) = converge_and_preserve(&nat, &job, &base, &cfg, "/i").unwrap();
    let b = run_incremental_ns(&nat, &job, &cfg, &fix_n, "/i", &delta).unwrap();

    let tcp = native_runner(3);
    let (_, fix_t) = converge_and_preserve(&tcp, &job, &base, &cfg, "/i").unwrap();
    let d = inc_dirs("/i");
    let c = tcp
        .run_remote_incremental(
            &job,
            &worker_spec(&["sssp"]),
            &cfg.clone().with_incremental_mode().with_tcp_transport(),
            &fix_t,
            &d.static_,
            &delta,
            &d.inc_state,
            &d.inc_static,
            &d.inc_out,
            &[],
        )
        .unwrap();

    assert_eq!(a.stats, b.stats);
    assert_eq!(a.stats, c.stats);
    assert!(a.stats.reset > 0, "removed witness edge must reset keys");
    assert_eq!(a.outcome.final_state, b.outcome.final_state);
    assert_eq!(a.outcome.final_state, c.outcome.final_state);
    assert_eq!(a.outcome.distances, c.outcome.distances);

    let patched = patched_statics(&job, &base, &delta).unwrap();
    let cold = converge_cold(&imr_runner(3), &job, &patched, &cfg, "/cold").unwrap();
    assert_eq!(a.outcome.final_state, cold.final_state);
}

/// PageRank (invertible ⊕): engines agree bit-for-bit with each other;
/// the incremental fixpoint matches the cold recompute within the
/// detector residual (1e-8 at ε = 1e-10).
#[test]
fn incremental_pagerank_equivalent_across_engines_and_to_cold() {
    let g = dataset("Google").unwrap().generate(0.002);
    let n = g.num_nodes() as u32;
    let nodes = g.num_nodes().to_string();
    let job = PageRankIter::new(g.num_nodes() as u64);
    let base = unweighted_statics(&g);
    let rm = (0..n).find(|&u| !g.neighbors(u).is_empty()).unwrap();
    let mut delta = GraphDelta::new();
    delta
        .insert_node(n)
        .insert_edge(3, n, 1.0)
        .insert_edge(n, 7, 1.0)
        .remove_edge(rm, g.neighbors(rm)[0]);
    let cfg = IterConfig::new("ipr", 3, 600)
        .with_accumulative_mode()
        .with_distance_threshold(1e-10);

    let sim = imr_runner(3);
    let (_, fix) = converge_and_preserve(&sim, &job, &base, &cfg, "/i").unwrap();
    let a = run_incremental_ns(&sim, &job, &cfg, &fix, "/i", &delta).unwrap();

    let nat = native_runner(3);
    let (_, fix_n) = converge_and_preserve(&nat, &job, &base, &cfg, "/i").unwrap();
    let b = run_incremental_ns(&nat, &job, &cfg, &fix_n, "/i", &delta).unwrap();

    let tcp = native_runner(3);
    let (_, fix_t) = converge_and_preserve(&tcp, &job, &base, &cfg, "/i").unwrap();
    let d = inc_dirs("/i");
    let c = tcp
        .run_remote_incremental(
            &job,
            &worker_spec(&["pagerank", &nodes]),
            &cfg.clone().with_incremental_mode().with_tcp_transport(),
            &fix_t,
            &d.static_,
            &delta,
            &d.inc_state,
            &d.inc_static,
            &d.inc_out,
            &[],
        )
        .unwrap();

    assert_eq!(a.stats, b.stats);
    assert_eq!(a.stats, c.stats);
    assert_eq!(a.stats.inserted, 1);
    assert!(
        a.stats.corrections > 0,
        "invertible plan injects corrections"
    );
    assert_eq!(a.outcome.final_state, b.outcome.final_state);
    assert_eq!(a.outcome.final_state, c.outcome.final_state);

    let patched = patched_statics(&job, &base, &delta).unwrap();
    let cold = converge_cold(&imr_runner(3), &job, &patched, &cfg, "/cold").unwrap();
    let gap = max_abs_diff(&a.outcome.final_state, &cold.final_state);
    assert!(gap < 1e-8, "incremental vs cold gap {gap}");
}

/// Connected components: a component split (edge removal) plus a merge
/// (new bridge) re-converges identically to cold on every engine.
#[test]
fn incremental_concomp_equivalent_across_engines_and_to_cold() {
    let g = dataset("DBLP").unwrap().generate(0.003);
    let n = g.num_nodes() as u32;
    let job = ConCompIter;
    let base = unweighted_statics(&g);
    let rm = (1..n).find(|&u| !g.neighbors(u).is_empty()).unwrap();
    let mut delta = GraphDelta::new();
    delta
        .remove_edge(rm, g.neighbors(rm)[0])
        .insert_edge(n - 1, n / 2, 1.0)
        .insert_node(n)
        .insert_edge(n / 3, n, 1.0);
    let cfg = IterConfig::new("icc", 3, 200)
        .with_accumulative_mode()
        .with_distance_threshold(0.5);

    let sim = imr_runner(3);
    let (_, fix) = converge_and_preserve(&sim, &job, &base, &cfg, "/i").unwrap();
    let a = run_incremental_ns(&sim, &job, &cfg, &fix, "/i", &delta).unwrap();

    let nat = native_runner(3);
    let (_, fix_n) = converge_and_preserve(&nat, &job, &base, &cfg, "/i").unwrap();
    let b = run_incremental_ns(&nat, &job, &cfg, &fix_n, "/i", &delta).unwrap();

    let tcp = native_runner(3);
    let (_, fix_t) = converge_and_preserve(&tcp, &job, &base, &cfg, "/i").unwrap();
    let d = inc_dirs("/i");
    let c = tcp
        .run_remote_incremental(
            &job,
            &worker_spec(&["concomp"]),
            &cfg.clone().with_incremental_mode().with_tcp_transport(),
            &fix_t,
            &d.static_,
            &delta,
            &d.inc_state,
            &d.inc_static,
            &d.inc_out,
            &[],
        )
        .unwrap();

    assert_eq!(a.stats, b.stats);
    assert_eq!(a.stats, c.stats);
    assert_eq!(a.outcome.final_state, b.outcome.final_state);
    assert_eq!(a.outcome.final_state, c.outcome.final_state);

    let patched = patched_statics(&job, &base, &delta).unwrap();
    let cold = converge_cold(&imr_runner(3), &job, &patched, &cfg, "/cold").unwrap();
    assert_eq!(a.outcome.final_state, cold.final_state);
}

/// A worsening delta big enough that the incremental run does real
/// propagation work, so a kill at check 1 lands mid-run: remove a batch
/// of shortest-path-tree edges, resetting every key witnessed through
/// them.
fn heavy_sssp_delta(
    base: &BTreeMap<u32, Vec<(u32, f32)>>,
    fixpoint: &[(u32, f64)],
    source: u32,
) -> GraphDelta {
    let tree = sssp_tree_edges(base, fixpoint, source);
    assert!(tree.len() >= 4, "fixpoint has too few witnessed edges");
    let mut delta = GraphDelta::new();
    let mut seen = std::collections::BTreeSet::new();
    for &(u, v, _) in &tree {
        if seen.len() >= 12 {
            break;
        }
        if seen.insert((u, v)) {
            delta.remove_edge(u, v);
        }
    }
    delta
}

/// Kill mid-incremental-run on the native channel fabric and on TCP
/// worker processes: the checkpoint/rollback supervisor replays from
/// the warm-start parts (epoch 0, before any checkpoint commits), so
/// the recovered run is bit-identical to a clean incremental run —
/// same fixpoint, same check count, same progress trace, same patch
/// stats. On TCP the replay generation re-announces and re-verifies
/// the warm-part digests.
#[test]
fn incremental_kill_replays_bit_identically_on_channel_and_tcp() {
    let g = dataset("DBLP").unwrap().generate(0.004);
    let source = best_source(&g);
    let job = SsspInc { source };
    let base = weighted_statics(&g);
    let cfg = IterConfig::new("iks", 4, 300)
        .with_accumulative_mode()
        .with_distance_threshold(1e-9)
        .with_checkpoint_interval(2);
    let probe = converge_cold(&imr_runner(4), &job, &base, &cfg, "/probe").unwrap();
    let delta = heavy_sssp_delta(&base, &probe.final_state, source);
    let kill = [FaultEvent::Kill {
        node: NodeId(1),
        at_iteration: 1,
    }];
    let d = inc_dirs("/i");

    for tcp in [false, true] {
        let label = if tcp { "tcp" } else { "channel" };
        let mut results = Vec::new();
        for faults in [&[] as &[FaultEvent], &kill] {
            let r = native_runner(4);
            let (_, fix) = converge_and_preserve(&r, &job, &base, &cfg, "/i").unwrap();
            let inc_cfg = if tcp {
                cfg.clone().with_incremental_mode().with_tcp_transport()
            } else {
                cfg.clone().with_incremental_mode()
            };
            let out = if tcp {
                r.run_remote_incremental(
                    &job,
                    &worker_spec(&["sssp"]),
                    &inc_cfg,
                    &fix,
                    &d.static_,
                    &delta,
                    &d.inc_state,
                    &d.inc_static,
                    &d.inc_out,
                    faults,
                )
                .unwrap()
            } else {
                r.run_incremental(
                    &job,
                    &inc_cfg,
                    &fix,
                    &d.static_,
                    &delta,
                    &d.inc_state,
                    &d.inc_static,
                    &d.inc_out,
                    faults,
                )
                .unwrap()
            };
            results.push(out);
        }
        let (clean, killed) = (&results[0], &results[1]);
        assert!(killed.outcome.recoveries >= 1, "{label}: kill never fired");
        assert_eq!(clean.stats, killed.stats, "{label}");
        assert_eq!(
            clean.outcome.final_state, killed.outcome.final_state,
            "{label}"
        );
        assert_eq!(
            clean.outcome.iterations, killed.outcome.iterations,
            "{label}"
        );
        assert_eq!(clean.outcome.distances, killed.outcome.distances, "{label}");
    }
}

/// Configuration and input validation: incremental mode requires
/// accumulative mode, `run_incremental` requires the incremental flag,
/// and malformed deltas (unknown endpoints, duplicate node inserts)
/// are rejected with descriptive errors before any engine runs.
#[test]
fn incremental_validation_rejects_bad_configs_and_deltas() {
    fn expect_config<T>(r: Result<T, EngineError>, needle: &str) {
        match r {
            Err(EngineError::Config(msg)) => assert!(msg.contains(needle), "{msg}"),
            Err(other) => panic!("expected a Config error, got {other}"),
            Ok(_) => panic!("expected a Config error, got success"),
        }
    }

    // Incremental without accumulative is a config error.
    let bare = IterConfig::new("x", 2, 10).with_incremental_mode();
    expect_config(bare.validate(&[]), "accumulative");

    // run_incremental without the incremental flag refuses to run.
    let g = dataset("DBLP").unwrap().generate(0.003);
    let job = SsspInc { source: 0 };
    let base = weighted_statics(&g);
    let cfg = IterConfig::new("iv", 2, 50)
        .with_accumulative_mode()
        .with_distance_threshold(1e-9);
    let r = imr_runner(2);
    let (_, fix) = converge_and_preserve(&r, &job, &base, &cfg, "/i").unwrap();
    let d = inc_dirs("/i");
    expect_config(
        r.run_incremental(
            &job,
            &cfg,
            &fix,
            &d.static_,
            &GraphDelta::new(),
            &d.inc_state,
            &d.inc_static,
            &d.inc_out,
            &[],
        ),
        "with_incremental_mode",
    );

    // Deltas naming unknown endpoints or re-inserting live nodes fail
    // with the planner's descriptive message.
    let inc_cfg = cfg.clone().with_incremental_mode();
    let mut bad_edge = GraphDelta::new();
    bad_edge.insert_edge(0, 9_999_999, 1.0);
    expect_config(
        r.run_incremental(
            &job,
            &inc_cfg,
            &fix,
            &d.static_,
            &bad_edge,
            &d.inc_state,
            &d.inc_static,
            &d.inc_out,
            &[],
        ),
        "dst does not exist",
    );
    let mut dup_node = GraphDelta::new();
    dup_node.insert_node(0);
    expect_config(
        r.run_incremental(
            &job,
            &inc_cfg,
            &fix,
            &d.static_,
            &dup_node,
            &d.inc_state,
            &d.inc_static,
            &d.inc_out,
            &[],
        ),
        "already exists",
    );

    // Stats of a healthy run report the delta's footprint.
    let mut ok = GraphDelta::new();
    ok.insert_node(g.num_nodes() as u32);
    let out = r
        .run_incremental(
            &job,
            &inc_cfg,
            &fix,
            &d.static_,
            &ok,
            &d.inc_state,
            &d.inc_static,
            &d.inc_out,
            &[],
        )
        .unwrap();
    assert_eq!(
        out.stats,
        PatchStats {
            ops: 1,
            inserted: 1,
            removed: 0,
            patched: 0,
            reset: 1,
            corrections: 0,
            total: g.num_nodes() + 1,
        }
    );
}
