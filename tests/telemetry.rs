//! The telemetry pipeline end to end: sampled series are
//! bit-reproducible on the virtual-time engine, every engine agrees on
//! the cumulative per-phase observation counts, histogram merging is
//! associative (the property the coordinator's cross-worker merge
//! relies on), and a kill/rollback leaves exactly one generation gap
//! in each worker's series.

use imapreduce::{FaultEvent, IterConfig};
use imr_algorithms::sssp::{self, SsspIter};
use imr_algorithms::testutil::{imr_runner, native_runner};
use imr_graph::dataset;
use imr_native::WorkerSpec;
use imr_simcluster::NodeId;
use imr_telemetry::{Phase, Sample, Telemetry, TelemetryHandle};
use std::sync::Arc;

fn handle() -> TelemetryHandle {
    Arc::new(Telemetry::default())
}

fn worker_spec(job_args: &[&str]) -> WorkerSpec {
    WorkerSpec::new(
        env!("CARGO_BIN_EXE_imr-worker"),
        job_args.iter().map(|s| (*s).to_owned()).collect(),
    )
}

/// Virtual-time stamps make the sim series part of the deterministic
/// contract: two identical runs must produce bit-identical samples and
/// histograms, not merely similar ones.
#[test]
fn sim_sampled_series_is_bit_identical_across_runs() {
    let g = dataset("DBLP").unwrap().generate(0.005);
    let cfg = IterConfig::new("sssp", 4, 6)
        .with_sync_maps()
        .with_checkpoint_interval(2);
    let mut runs = Vec::new();
    for _ in 0..2 {
        let tel = handle();
        let r = imr_runner(4).with_telemetry(Arc::clone(&tel));
        sssp::run_sssp_imr(&r, &g, 0, &cfg).unwrap();
        runs.push((tel.samples(), tel.hist_snapshots()));
    }
    assert_eq!(runs[0].0.len(), 4 * 6, "one sample per pair per iteration");
    assert_eq!(runs[0].0, runs[1].0, "sampled series must be bit-identical");
    assert_eq!(runs[0].1, runs[1].1, "histograms must be bit-identical");
    // Checkpoint interval 2 over 6 iterations: the checkpoint phase was
    // actually observed, not just defined.
    assert!(runs[0].1[Phase::CheckpointWrite.index()].count() > 0);
}

/// All three engines agree on the cumulative values the pipeline
/// defines per run: one sample and one map/reduce observation per pair
/// per iteration, counters nondecreasing along every worker's series.
#[test]
fn engines_agree_on_cumulative_phase_counts() {
    let g = dataset("DBLP").unwrap().generate(0.005);
    let cfg = IterConfig::new("sssp", 4, 6)
        .with_sync_maps()
        .with_checkpoint_interval(2);

    let sim_tel = handle();
    let sim = imr_runner(4).with_telemetry(Arc::clone(&sim_tel));
    sssp::run_sssp_imr(&sim, &g, 0, &cfg).unwrap();

    let chan_tel = handle();
    let chan = native_runner(4).with_telemetry(Arc::clone(&chan_tel));
    sssp::run_sssp_imr(&chan, &g, 0, &cfg).unwrap();

    let tcp_tel = handle();
    let tcp = native_runner(4).with_telemetry(Arc::clone(&tcp_tel));
    sssp::load_sssp_imr(&tcp, &g, 0, 4, "/s", "/t").unwrap();
    tcp.run_remote(
        &SsspIter,
        &worker_spec(&["sssp"]),
        &cfg.clone().with_tcp_transport(),
        "/s",
        "/t",
        "/o",
        &[],
    )
    .unwrap();

    for (label, tel) in [("sim", &sim_tel), ("channel", &chan_tel), ("tcp", &tcp_tel)] {
        let samples = tel.samples();
        assert_eq!(samples.len(), 4 * 6, "{label}: samples = pairs x iters");
        let hists = tel.hist_snapshots();
        assert_eq!(hists[Phase::Map.index()].count(), 4 * 6, "{label}: map");
        assert_eq!(
            hists[Phase::Reduce.index()].count(),
            4 * 6,
            "{label}: reduce"
        );
        assert_eq!(hists[Phase::Handoff.index()].count(), 4 * 6, "{label}");
        let workers: std::collections::BTreeSet<u32> = samples.iter().map(|s| s.worker).collect();
        assert_eq!(workers.len(), 4, "{label}: every pair sampled");
        let max_iter = samples.iter().map(|s| s.iteration).max().unwrap();
        assert_eq!(max_iter, 6, "{label}: final iteration (1-based)");
        assert_monotone_counters(label, &samples);
        assert_eq!(tel.dropped_samples(), 0, "{label}: ring never overflowed");
    }
}

/// Counters are cumulative registry snapshots: along any one worker's
/// time-ordered series every counter column must be nondecreasing.
fn assert_monotone_counters(label: &str, samples: &[Sample]) {
    let workers: std::collections::BTreeSet<u32> = samples.iter().map(|s| s.worker).collect();
    for w in workers {
        let series: Vec<&Sample> = samples.iter().filter(|s| s.worker == w).collect();
        for pair in series.windows(2) {
            for (i, (a, b)) in pair[0].counters.iter().zip(&pair[1].counters).enumerate() {
                assert!(
                    b >= a,
                    "{label}: worker {w} counter {i} regressed ({a} -> {b})"
                );
            }
        }
    }
}

/// The coordinator merges per-worker histogram deltas in arrival
/// order, which is only sound if bucket-wise merge is associative and
/// commutative. Checked on real observations, not synthetic counts.
#[test]
fn histogram_merge_is_associative_and_commutative() {
    let parts: Vec<_> = [3u64, 7, 11]
        .iter()
        .map(|seed| {
            let tel = Telemetry::default();
            for i in 0..50u64 {
                tel.record_phase(Phase::Map, seed * 1_000 + i * seed);
                tel.record_phase(Phase::Reduce, seed.pow(3) + i);
            }
            tel.hist_snapshots()
        })
        .collect();
    let (a, b, c) = (&parts[0], &parts[1], &parts[2]);
    for p in 0..imr_telemetry::NUM_PHASES {
        let left = a[p].merged(&b[p]).merged(&c[p]);
        let right = a[p].merged(&b[p].merged(&c[p]));
        assert_eq!(left, right, "associativity broke for phase {p}");
        assert_eq!(a[p].merged(&b[p]), b[p].merged(&a[p]), "commutativity");
        assert_eq!(
            left.count(),
            a[p].count() + b[p].count() + c[p].count(),
            "merge must not lose observations"
        );
    }
}

/// A scripted kill rolls every pair back to the last checkpoint in a
/// new generation: each worker's time-ordered series must show exactly
/// one generation transition (the gap), on both in-process engines.
#[test]
fn kill_rollback_leaves_exactly_one_generation_gap() {
    let g = dataset("DBLP").unwrap().generate(0.005);
    let cfg = IterConfig::new("sssp", 4, 6).with_checkpoint_interval(2);
    let failures = [FaultEvent::Kill {
        node: NodeId(0),
        at_iteration: 3,
    }];

    let runs: Vec<(&str, TelemetryHandle)> = vec![
        ("sim", {
            let tel = handle();
            let r = imr_runner(4).with_telemetry(Arc::clone(&tel));
            sssp::load_sssp_imr(&r, &g, 0, 4, "/s", "/t").unwrap();
            r.run_faults(&SsspIter, &cfg, "/s", "/t", "/o", &failures)
                .unwrap();
            tel
        }),
        ("native", {
            let tel = handle();
            let r = native_runner(4).with_telemetry(Arc::clone(&tel));
            sssp::load_sssp_imr(&r, &g, 0, 4, "/s", "/t").unwrap();
            r.run_faults(&SsspIter, &cfg, "/s", "/t", "/o", &failures)
                .unwrap();
            tel
        }),
    ];
    for (label, tel) in runs {
        let samples = tel.samples();
        let workers: std::collections::BTreeSet<u32> = samples.iter().map(|s| s.worker).collect();
        assert_eq!(workers.len(), 4, "{label}: every pair sampled");
        for w in workers {
            let series: Vec<&Sample> = samples.iter().filter(|s| s.worker == w).collect();
            let gaps = series
                .windows(2)
                .filter(|p| p[1].generation != p[0].generation)
                .count();
            assert_eq!(
                gaps, 1,
                "{label}: worker {w} must have exactly one generation gap"
            );
            // The gap is a rollback: the first post-gap sample restarts
            // at or before the last pre-gap iteration.
            let gap_at = series
                .windows(2)
                .position(|p| p[1].generation != p[0].generation)
                .unwrap();
            assert!(
                series[gap_at + 1].iteration <= series[gap_at].iteration,
                "{label}: worker {w} generation gap must rewind the iteration"
            );
        }
    }
}
