//! Network-chaos resilience of the TCP backend: under deterministic
//! seeded fault schedules (frame drops, bit flips, duplicates,
//! mid-frame connection resets) every workload must converge to a
//! result bit-identical to its clean run — corruption is CRC-detected,
//! the connection torn down, and the generation replayed from the last
//! checkpoint — and a schedule that outlasts the retry budget must
//! yield a typed error, never a hang or a panic.

use imapreduce::{ChaosConfig, IterConfig, IterOutcome, NetPolicy, WatchdogConfig};
use imr_algorithms::concomp::{self, ConCompIter};
use imr_algorithms::kmeans::{self, KmeansIter};
use imr_algorithms::pagerank::{self, PageRankIter};
use imr_algorithms::sssp::{self, SsspIter};
use imr_algorithms::testutil::native_runner;
use imr_graph::{dataset, generate_points};
use imr_jobs::{AlgoSpec, EngineSel, JobPhase, JobService, JobSpec, ServiceConfig};
use imr_mapreduce::EngineError;
use imr_native::WorkerSpec;
use std::time::Duration;

/// A spec launching this package's `imr-worker` binary with `job_args`.
fn worker_spec(job_args: &[&str]) -> WorkerSpec {
    WorkerSpec::new(
        env!("CARGO_BIN_EXE_imr-worker"),
        job_args.iter().map(|s| (*s).to_owned()).collect(),
    )
}

/// Snappy deadlines for tests: the retry budget (10) outlasts the
/// chaos teardown budget (3) by a wide margin, so every schedule below
/// runs out of faults long before the supervisor runs out of patience.
fn test_policy() -> NetPolicy {
    NetPolicy {
        teardown_grace: Duration::from_secs(1),
        retry_budget: 10,
        backoff_base: Duration::from_millis(10),
        backoff_max: Duration::from_millis(100),
        ..NetPolicy::default()
    }
}

/// A moderate all-fault-classes schedule: three teardown-class
/// injections (drops, bit flips, duplicates, resets as the seeded
/// PRNG decides), then a clean wire.
fn test_chaos(seed: u64) -> ChaosConfig {
    ChaosConfig::seeded(seed)
        .with_drop_rate(0.05)
        .with_corrupt_rate(0.10)
        .with_duplicate_rate(0.10)
        .with_reset_rate(0.05)
        .with_budget(3)
}

/// The shared shape of every identity test below: checkpoints to
/// replay from, a watchdog to catch stall-shaped faults, the test
/// policy, and the given chaos schedule.
fn chaotic(cfg: IterConfig, seed: u64) -> IterConfig {
    cfg.with_checkpoint_interval(2)
        .with_net_policy(test_policy())
        .with_watchdog(WatchdogConfig {
            poll: Duration::from_millis(5),
            stall_timeout: Duration::from_secs(2),
        })
        .with_chaos(test_chaos(seed))
}

fn assert_same<S: PartialEq + std::fmt::Debug>(
    label: &str,
    clean: &IterOutcome<u32, S>,
    chaos: &IterOutcome<u32, S>,
) {
    assert_eq!(
        clean.final_state, chaos.final_state,
        "{label}: chaotic run diverged from the clean run"
    );
    assert_eq!(clean.iterations, chaos.iterations, "{label}: iterations");
    assert_eq!(clean.distances, chaos.distances, "{label}: distances");
}

/// SSSP in both triggering modes: the chaotic run equals the clean
/// run bit-for-bit and the coordinator counted its injections.
#[test]
fn chaos_sssp_sync_and_async_match_clean() {
    let g = dataset("DBLP").unwrap().generate(0.005);
    for sync in [false, true] {
        let mut cfg = IterConfig::new("sssp-chaos", 2, 6)
            .with_tcp_transport()
            .with_checkpoint_interval(2)
            .with_net_policy(test_policy());
        if sync {
            cfg = cfg.with_sync_maps();
        }
        let clean_rt = native_runner(4);
        sssp::load_sssp_imr(&clean_rt, &g, 0, 2, "/s", "/t").unwrap();
        let clean = clean_rt
            .run_remote(
                &SsspIter,
                &worker_spec(&["sssp"]),
                &cfg,
                "/s",
                "/t",
                "/o",
                &[],
            )
            .unwrap();

        let chaos_cfg = chaotic(cfg, 11 + sync as u64);
        let chaos_rt = native_runner(4);
        sssp::load_sssp_imr(&chaos_rt, &g, 0, 2, "/s", "/t").unwrap();
        let chaos = chaos_rt
            .run_remote(
                &SsspIter,
                &worker_spec(&["sssp"]),
                &chaos_cfg,
                "/s",
                "/t",
                "/o",
                &[],
            )
            .unwrap();
        assert_same(&format!("sssp sync={sync}"), &clean, &chaos);
        let m = chaos_rt.metrics().snapshot();
        assert!(
            m.chaos_injections > 0,
            "sync={sync}: the schedule must actually inject faults"
        );
    }
}

/// PageRank: bit-identity under chaos, and the teardown-class faults
/// leave their fingerprints on the robustness counters.
#[test]
fn chaos_pagerank_matches_clean_and_counts_faults() {
    let g = dataset("Google").unwrap().generate(0.003);
    let cfg = IterConfig::new("pr-chaos", 2, 6)
        .with_tcp_transport()
        .with_checkpoint_interval(2)
        .with_net_policy(test_policy());
    let job = PageRankIter::new(g.num_nodes() as u64);
    let nodes = g.num_nodes().to_string();

    let clean_rt = native_runner(4);
    pagerank::load_pagerank_imr(&clean_rt, &g, 2, "/s", "/t").unwrap();
    let clean = clean_rt
        .run_remote(
            &job,
            &worker_spec(&["pagerank", &nodes]),
            &cfg,
            "/s",
            "/t",
            "/o",
            &[],
        )
        .unwrap();

    let chaos_rt = native_runner(4);
    pagerank::load_pagerank_imr(&chaos_rt, &g, 2, "/s", "/t").unwrap();
    let chaos = chaos_rt
        .run_remote(
            &job,
            &worker_spec(&["pagerank", &nodes]),
            &chaotic(cfg, 23),
            "/s",
            "/t",
            "/o",
            &[],
        )
        .unwrap();
    assert_same("pagerank", &clean, &chaos);
    let m = chaos_rt.metrics().snapshot();
    assert!(m.chaos_injections > 0, "schedule must inject");
    assert!(
        m.reconnect_attempts > 0,
        "an injected teardown must force at least one reconnect"
    );
}

/// Connected components (integer labels — no float slack at all).
#[test]
fn chaos_concomp_matches_clean() {
    let g = dataset("DBLP").unwrap().generate(0.005);
    let cfg = IterConfig::new("cc-chaos", 2, 8)
        .with_tcp_transport()
        .with_checkpoint_interval(2)
        .with_net_policy(test_policy());

    let clean_rt = native_runner(4);
    concomp::load_concomp_imr(&clean_rt, &g, 2, "/s", "/t").unwrap();
    let clean = clean_rt
        .run_remote(
            &ConCompIter,
            &worker_spec(&["concomp"]),
            &cfg,
            "/s",
            "/t",
            "/o",
            &[],
        )
        .unwrap();

    let chaos_rt = native_runner(4);
    concomp::load_concomp_imr(&chaos_rt, &g, 2, "/s", "/t").unwrap();
    let chaos = chaos_rt
        .run_remote(
            &ConCompIter,
            &worker_spec(&["concomp"]),
            &chaotic(cfg, 37),
            "/s",
            "/t",
            "/o",
            &[],
        )
        .unwrap();
    assert_same("concomp", &clean, &chaos);
}

/// K-means (one2all broadcast, inherently synchronous): the
/// coordinator-assembled broadcast survives chaos-induced replay.
#[test]
fn chaos_kmeans_one2all_matches_clean() {
    let points = generate_points(400, 5, 3, 77);
    let cfg = IterConfig::new("km-chaos", 2, 5)
        .with_one2all()
        .with_tcp_transport()
        .with_checkpoint_interval(2)
        .with_net_policy(test_policy());
    let job = KmeansIter { combiner: false };

    let clean_rt = native_runner(4);
    kmeans::load_kmeans_imr(&clean_rt, &points, 3, 2, "/s", "/t").unwrap();
    let clean = clean_rt
        .run_remote(
            &job,
            &worker_spec(&["kmeans", "0"]),
            &cfg,
            "/s",
            "/t",
            "/o",
            &[],
        )
        .unwrap();

    let chaos_rt = native_runner(4);
    kmeans::load_kmeans_imr(&chaos_rt, &points, 3, 2, "/s", "/t").unwrap();
    let chaos = chaos_rt
        .run_remote(
            &job,
            &worker_spec(&["kmeans", "0"]),
            &chaotic(cfg, 53),
            "/s",
            "/t",
            "/o",
            &[],
        )
        .unwrap();
    assert_same("kmeans", &clean, &chaos);
}

/// Barrier-free delta-accumulative PageRank: even without iteration
/// barriers the chaotic run's fixpoint, check count and progress trace
/// equal the clean run's.
#[test]
fn chaos_delta_pagerank_matches_clean() {
    let g = dataset("Google").unwrap().generate(0.003);
    let cfg = IterConfig::new("prd-chaos", 2, 400)
        .with_accumulative_mode()
        .with_distance_threshold(1e-10)
        .with_tcp_transport()
        .with_checkpoint_interval(2)
        .with_net_policy(test_policy());
    let job = PageRankIter::new(g.num_nodes() as u64);
    let nodes = g.num_nodes().to_string();

    let clean_rt = native_runner(4);
    pagerank::load_pagerank_imr(&clean_rt, &g, 2, "/s", "/t").unwrap();
    let clean = clean_rt
        .run_remote(
            &job,
            &worker_spec(&["pagerank", &nodes]),
            &cfg,
            "/s",
            "/t",
            "/o",
            &[],
        )
        .unwrap();

    let chaos_rt = native_runner(4);
    pagerank::load_pagerank_imr(&chaos_rt, &g, 2, "/s", "/t").unwrap();
    let chaos = chaos_rt
        .run_remote(
            &job,
            &worker_spec(&["pagerank", &nodes]),
            &chaotic(cfg, 71),
            "/s",
            "/t",
            "/o",
            &[],
        )
        .unwrap();
    assert_same("delta pagerank", &clean, &chaos);
}

/// A schedule that outlasts the retry budget (unbounded teardown
/// injections at the maximum allowed rates) must surface as a typed
/// worker error naming the exhausted budget — never a hang or panic.
#[test]
fn chaos_budget_exhaustion_is_a_typed_error() {
    let g = dataset("DBLP").unwrap().generate(0.004);
    let policy = NetPolicy {
        teardown_grace: Duration::from_millis(500),
        retry_budget: 2,
        backoff_base: Duration::from_millis(5),
        backoff_max: Duration::from_millis(20),
        ..NetPolicy::default()
    };
    let endless = ChaosConfig::seeded(97)
        .with_drop_rate(0.25)
        .with_corrupt_rate(0.25)
        .with_budget(u64::MAX / 2);
    let cfg = IterConfig::new("sssp-doom", 2, 6)
        .with_tcp_transport()
        .with_checkpoint_interval(2)
        .with_net_policy(policy)
        .with_watchdog(WatchdogConfig {
            poll: Duration::from_millis(5),
            stall_timeout: Duration::from_millis(500),
        })
        .with_chaos(endless);
    let rt = native_runner(4);
    sssp::load_sssp_imr(&rt, &g, 0, 2, "/s", "/t").unwrap();
    let err = rt
        .run_remote(
            &SsspIter,
            &worker_spec(&["sssp"]),
            &cfg,
            "/s",
            "/t",
            "/o",
            &[],
        )
        .unwrap_err();
    match err {
        EngineError::Worker(msg) => {
            assert!(msg.contains("retry budget"), "untyped failure: {msg}")
        }
        other => panic!("expected a worker error naming the retry budget, got {other}"),
    }
    assert_eq!(rt.metrics().snapshot().retries_exhausted, 1);
}

/// The same exhaustion, end to end through the job service: the job
/// burns its attempts and lands in the dead-letter queue with the
/// retry-budget failure as its reason.
#[test]
fn chaos_budget_exhaustion_dead_letters_through_the_job_service() {
    let endless = ChaosConfig::seeded(131)
        .with_drop_rate(0.25)
        .with_corrupt_rate(0.25)
        .with_budget(u64::MAX / 2);
    let svc = JobService::new(
        ServiceConfig::default()
            .with_slots(4)
            .with_worker_bin(env!("CARGO_BIN_EXE_imr-worker"))
            .with_chaos(endless),
    );
    let id = svc
        .submit(
            JobSpec::new("doomed", AlgoSpec::Halve, EngineSel::Tcp, 5)
                .with_scale(8)
                .with_max_iters(4)
                .with_max_retries(0),
        )
        .unwrap();
    svc.run_until_idle().unwrap();
    let status = svc.status();
    assert_eq!(status[0].phase, JobPhase::DeadLettered);
    assert!(
        status[0].reason.contains("retry budget"),
        "reason: {}",
        status[0].reason
    );
    let dlq = svc.dlq().unwrap();
    assert_eq!(dlq.len(), 1);
    assert_eq!(dlq[0].id, id);
    assert!(svc.result(id).unwrap().is_none());
}
