//! Cross-crate integration: both engines run the paper's workloads on
//! the same generated data and must agree with each other and with the
//! sequential references.

use imapreduce::{FailureEvent, IterConfig, IterEngine, IterOutcome, LoadBalance, WatchdogConfig};
use imr_algorithms::concomp::ConCompIter;
use imr_algorithms::kmeans::{KmState, KmeansIter};
use imr_algorithms::pagerank::PageRankIter;
use imr_algorithms::sssp::SsspIter;
use imr_algorithms::testutil::{
    imr_runner, imr_runner_on, mr_runner, native_runner, native_runner_on,
};
use imr_algorithms::{concomp, jacobi, kmeans, matpower, pagerank, sssp};
use imr_graph::{dataset, generate_matrix, generate_points, Graph};
use imr_mapreduce::EngineError;
use imr_native::{NativeRunner, WorkerSpec};
use imr_simcluster::{ClusterSpec, NodeId, TaskClock};
use std::time::Duration;

#[test]
fn sssp_pipeline_catalog_to_engines() {
    // End-to-end: catalog row → generator → both engines → references.
    let g = dataset("DBLP").unwrap().generate(0.005);
    let iters = 6;

    let imr = imr_runner(4);
    let cfg = IterConfig::new("sssp", 4, iters);
    let a = sssp::run_sssp_imr(&imr, &g, 0, &cfg).unwrap();

    let mr = mr_runner(4);
    let b = sssp::run_sssp_mr(&mr, &g, 0, 4, iters, None).unwrap();

    let expect = sssp::reference_sssp_rounds(&g, 0, iters);
    let mut clock = TaskClock::default();
    let mut mr_out: Vec<(u32, sssp::DistAdj)> =
        imr_mapreduce::io::read_all(mr.dfs(), &b.final_dir, NodeId(0), &mut clock).unwrap();
    // Baseline output is per-part sorted; order globally for the zip.
    mr_out.sort_by_key(|&(k, _)| k);

    assert_eq!(a.final_state.len(), g.num_nodes());
    assert_eq!(mr_out.len(), g.num_nodes());
    for ((k1, d1), (k2, (d2, _))) in a.final_state.iter().zip(&mr_out) {
        assert_eq!(k1, k2);
        let e = expect[*k1 as usize];
        let ok = |d: f64| (d - e).abs() < 1e-9 || (d.is_infinite() && e.is_infinite());
        assert!(ok(*d1) && ok(*d2), "node {k1}: imr={d1} mr={d2} ref={e}");
    }
    // The headline claim, end to end.
    assert!(a.report.finished < b.report.finished);
}

#[test]
fn pagerank_pipeline_on_webgraph_standin() {
    let g = dataset("Google").unwrap().generate(0.003);
    let iters = 8;
    let imr = imr_runner(4);
    let cfg = IterConfig::new("pr", 4, iters);
    let out = pagerank::run_pagerank_imr(&imr, &g, &cfg).unwrap();
    let expect = pagerank::reference_pagerank(&g, 0.85, iters);
    for (k, v) in &out.final_state {
        assert!((v - expect[*k as usize]).abs() < 1e-12);
    }
}

#[test]
fn kmeans_engines_agree_on_generated_points() {
    let points = generate_points(400, 5, 3, 77);
    let iters = 6;
    let imr = imr_runner(4);
    let cfg = IterConfig::new("km", 4, iters).with_one2all();
    let a = kmeans::run_kmeans_imr(&imr, &points, 3, &cfg, false).unwrap();
    let mr = mr_runner(4);
    let b = kmeans::run_kmeans_mr(&mr, &points, 3, 4, iters, false, None).unwrap();
    assert_eq!(a.final_state.len(), b.centroids.len());
    for ((ka, (ca, _)), (kb, (cb, _))) in a.final_state.iter().zip(&b.centroids) {
        assert_eq!(ka, kb);
        for (x, y) in ca.iter().zip(cb) {
            assert!((x - y).abs() < 1e-9);
        }
    }
}

#[test]
fn matpower_engines_agree() {
    let m = generate_matrix(12, 5);
    let imr = imr_runner(4);
    let a = matpower::run_matpower_imr(&imr, &m, 2, 3).unwrap();
    let mr = mr_runner(4);
    let b = matpower::run_matpower_mr(&mr, &m, 2, 3).unwrap();
    let expect = matpower::reference_matpower(&m, 3);
    for (((i, k), v), (_, w)) in a.final_state.iter().zip(&b.result) {
        let e = expect[*i as usize][*k as usize];
        assert!((v - e).abs() < 1e-9 * e.abs().max(1.0));
        assert!((w - e).abs() < 1e-9 * e.abs().max(1.0));
    }
}

#[test]
fn jacobi_converges_on_ec2_preset() {
    let (system, _) = jacobi::generate_system(50, 4, 5);
    let r = imr_runner_on(ClusterSpec::ec2(8));
    let cfg = IterConfig::new("jacobi", 8, 150)
        .with_one2all()
        .with_distance_threshold(1e-12);
    let out = jacobi::run_jacobi_imr(&r, &system, &cfg).unwrap();
    let x: Vec<f64> = out.final_state.iter().map(|&(_, v)| v).collect();
    assert!(jacobi::residual(&system, &x) < 1e-8);
}

/// SSSP on the native thread-per-pair backend: bit-identical to the
/// virtual-time engine and the sequential reference, across thread
/// counts and both triggering modes.
#[test]
fn native_sssp_matches_sim_and_reference() {
    let g = dataset("DBLP").unwrap().generate(0.005);
    let iters = 6;
    let expect = sssp::reference_sssp_rounds(&g, 0, iters);
    for tasks in [1usize, 4] {
        for sync in [false, true] {
            let mut cfg = IterConfig::new("sssp", tasks, iters);
            if sync {
                cfg = cfg.with_sync_maps();
            }
            let sim = imr_runner(4);
            let a = sssp::run_sssp_imr(&sim, &g, 0, &cfg).unwrap();
            let nat = native_runner(4);
            let b = sssp::run_sssp_imr(&nat, &g, 0, &cfg).unwrap();
            assert_eq!(a.final_state, b.final_state, "tasks={tasks} sync={sync}");
            assert_eq!(a.iterations, b.iterations);
            assert_eq!(a.distances, b.distances);
            for (k, d) in &b.final_state {
                let e = expect[*k as usize];
                assert!(
                    (d - e).abs() < 1e-9 || (d.is_infinite() && e.is_infinite()),
                    "node {k}: native={d} ref={e}"
                );
            }
        }
    }
}

/// PageRank: native equals the simulation engine exactly and the
/// sequential reference to floating-point noise.
#[test]
fn native_pagerank_matches_sim_and_reference() {
    let g = dataset("Google").unwrap().generate(0.003);
    let iters = 8;
    let expect = pagerank::reference_pagerank(&g, 0.85, iters);
    for tasks in [1usize, 4] {
        for sync in [false, true] {
            let mut cfg = IterConfig::new("pr", tasks, iters);
            if sync {
                cfg = cfg.with_sync_maps();
            }
            let sim = imr_runner(4);
            let a = pagerank::run_pagerank_imr(&sim, &g, &cfg).unwrap();
            let nat = native_runner(4);
            let b = pagerank::run_pagerank_imr(&nat, &g, &cfg).unwrap();
            assert_eq!(a.final_state, b.final_state, "tasks={tasks} sync={sync}");
            assert_eq!(a.iterations, b.iterations);
            for (k, v) in &b.final_state {
                assert!((v - expect[*k as usize]).abs() < 1e-12);
            }
        }
    }
}

/// K-means (one2all broadcast): native equals the simulation engine
/// exactly at every thread count.
#[test]
fn native_kmeans_matches_sim() {
    let points = generate_points(400, 5, 3, 77);
    for tasks in [1usize, 4] {
        let cfg = IterConfig::new("km", tasks, 6).with_one2all();
        let sim = imr_runner(4);
        let a = kmeans::run_kmeans_imr(&sim, &points, 3, &cfg, false).unwrap();
        let nat = native_runner(4);
        let b = kmeans::run_kmeans_imr(&nat, &points, 3, &cfg, false).unwrap();
        assert_eq!(a.final_state, b.final_state, "tasks={tasks}");
        assert_eq!(a.iterations, b.iterations);
    }
}

/// Distance-threshold termination agrees across backends: both stop at
/// the same iteration with the same distance trace.
#[test]
fn native_termination_matches_sim() {
    let g = dataset("DBLP").unwrap().generate(0.004);
    let cfg = IterConfig::new("sssp", 3, 64).with_distance_threshold(1e-12);
    let sim = imr_runner(3);
    let a = sssp::run_sssp_imr(&sim, &g, 0, &cfg).unwrap();
    let nat = native_runner(3);
    let b = sssp::run_sssp_imr(&nat, &g, 0, &cfg).unwrap();
    assert!(a.iterations < 64, "converged before the cap");
    assert_eq!(a.iterations, b.iterations);
    assert_eq!(a.distances, b.distances);
    assert_eq!(a.final_state, b.final_state);
}

fn sssp_run(
    runner: &impl IterEngine,
    g: &Graph,
    cfg: &IterConfig,
    failures: &[FailureEvent],
) -> IterOutcome<u32, f64> {
    sssp::load_sssp_imr(runner, g, 0, cfg.num_tasks, "/s", "/t").unwrap();
    runner
        .run(&SsspIter, cfg, "/s", "/t", "/o", failures)
        .unwrap()
}

fn pagerank_run(
    runner: &impl IterEngine,
    g: &Graph,
    cfg: &IterConfig,
    failures: &[FailureEvent],
) -> IterOutcome<u32, f64> {
    pagerank::load_pagerank_imr(runner, g, cfg.num_tasks, "/s", "/t").unwrap();
    let job = PageRankIter::new(g.num_nodes() as u64);
    runner.run(&job, cfg, "/s", "/t", "/o", failures).unwrap()
}

fn kmeans_run(
    runner: &impl IterEngine,
    points: &[(u32, Vec<f64>)],
    cfg: &IterConfig,
    failures: &[FailureEvent],
) -> IterOutcome<u32, KmState> {
    kmeans::load_kmeans_imr(runner, points, 3, cfg.num_tasks, "/s", "/t").unwrap();
    let job = KmeansIter { combiner: false };
    runner.run(&job, cfg, "/s", "/t", "/o", failures).unwrap()
}

/// SSSP under scripted failures (§3.4.1): on both engines, at every
/// thread count and triggering mode, an injected failure recovers to a
/// result bit-identical to the failure-free run — and the engines
/// agree with each other.
#[test]
fn sssp_failure_runs_match_clean_runs_on_both_engines() {
    let g = dataset("DBLP").unwrap().generate(0.005);
    let failures = [FailureEvent {
        node: NodeId(0),
        at_iteration: 3,
    }];
    for tasks in [1usize, 4] {
        for sync in [false, true] {
            let mut cfg = IterConfig::new("sssp", tasks, 6).with_checkpoint_interval(2);
            if sync {
                cfg = cfg.with_sync_maps();
            }
            let sim_clean = sssp_run(&imr_runner(4), &g, &cfg, &[]);
            let sim_fail = sssp_run(&imr_runner(4), &g, &cfg, &failures);
            let nat_clean = sssp_run(&native_runner(4), &g, &cfg, &[]);
            let nat_fail = sssp_run(&native_runner(4), &g, &cfg, &failures);
            assert_eq!(sim_fail.recoveries, 1, "tasks={tasks} sync={sync}");
            assert_eq!(nat_fail.recoveries, 1, "tasks={tasks} sync={sync}");
            for (label, clean, fail) in [
                ("sim", &sim_clean, &sim_fail),
                ("native", &nat_clean, &nat_fail),
            ] {
                assert_eq!(
                    clean.final_state, fail.final_state,
                    "{label} tasks={tasks} sync={sync}"
                );
                assert_eq!(clean.iterations, fail.iterations);
                assert_eq!(clean.distances, fail.distances);
            }
            assert_eq!(sim_fail.final_state, nat_fail.final_state);
            assert_eq!(sim_fail.iterations, nat_fail.iterations);
        }
    }
}

/// PageRank under scripted failures: same bit-identity contract as
/// SSSP, on both engines, across thread counts and triggering modes.
#[test]
fn pagerank_failure_runs_match_clean_runs_on_both_engines() {
    let g = dataset("Google").unwrap().generate(0.002);
    let failures = [FailureEvent {
        node: NodeId(0),
        at_iteration: 3,
    }];
    for tasks in [1usize, 4] {
        for sync in [false, true] {
            let mut cfg = IterConfig::new("pr", tasks, 6).with_checkpoint_interval(2);
            if sync {
                cfg = cfg.with_sync_maps();
            }
            let sim_clean = pagerank_run(&imr_runner(4), &g, &cfg, &[]);
            let sim_fail = pagerank_run(&imr_runner(4), &g, &cfg, &failures);
            let nat_clean = pagerank_run(&native_runner(4), &g, &cfg, &[]);
            let nat_fail = pagerank_run(&native_runner(4), &g, &cfg, &failures);
            assert_eq!(sim_fail.recoveries, 1, "tasks={tasks} sync={sync}");
            assert_eq!(nat_fail.recoveries, 1, "tasks={tasks} sync={sync}");
            for (label, clean, fail) in [
                ("sim", &sim_clean, &sim_fail),
                ("native", &nat_clean, &nat_fail),
            ] {
                assert_eq!(
                    clean.final_state, fail.final_state,
                    "{label} tasks={tasks} sync={sync}"
                );
                assert_eq!(clean.iterations, fail.iterations);
            }
            assert_eq!(sim_fail.final_state, nat_fail.final_state);
        }
    }
}

/// K-means (one2all broadcast, inherently synchronous) under scripted
/// failures: the broadcast global state is restored from the snapshot
/// parts and the failed run stays bit-identical to the clean one.
#[test]
fn kmeans_failure_runs_match_clean_runs_on_both_engines() {
    let points = generate_points(400, 5, 3, 77);
    let failures = [FailureEvent {
        node: NodeId(0),
        at_iteration: 3,
    }];
    for tasks in [1usize, 4] {
        let cfg = IterConfig::new("km", tasks, 6)
            .with_one2all()
            .with_checkpoint_interval(2);
        let sim_clean = kmeans_run(&imr_runner(4), &points, &cfg, &[]);
        let sim_fail = kmeans_run(&imr_runner(4), &points, &cfg, &failures);
        let nat_clean = kmeans_run(&native_runner(4), &points, &cfg, &[]);
        let nat_fail = kmeans_run(&native_runner(4), &points, &cfg, &failures);
        assert_eq!(sim_fail.recoveries, 1, "tasks={tasks}");
        assert_eq!(nat_fail.recoveries, 1, "tasks={tasks}");
        for (label, clean, fail) in [
            ("sim", &sim_clean, &sim_fail),
            ("native", &nat_clean, &nat_fail),
        ] {
            assert_eq!(clean.final_state, fail.final_state, "{label} tasks={tasks}");
            assert_eq!(clean.iterations, fail.iterations);
        }
        assert_eq!(sim_fail.final_state, nat_fail.final_state);
    }
}

/// A native runner on a 5-node cluster whose node 0 is emulated 10x
/// slower, with a spare fast node for the balancer to migrate onto.
fn skewed_native() -> NativeRunner {
    let mut spec = ClusterSpec::local(5);
    spec.nodes[0].speed = 0.1;
    native_runner_on(spec)
}

/// Checkpoint-every-iteration + a fast-polling monitor: the base
/// configuration both the migration-free and migration-enabled runs
/// share, so the only difference is the balancer.
fn skew_cfg(name: &str, iters: usize) -> IterConfig {
    IterConfig::new(name, 4, iters)
        .with_checkpoint_interval(1)
        .with_watchdog(WatchdogConfig {
            poll: Duration::from_millis(2),
            stall_timeout: Duration::from_secs(10),
        })
}

fn with_balance(cfg: IterConfig) -> IterConfig {
    cfg.with_load_balance(LoadBalance {
        deviation: 0.3,
        max_migrations: 4,
    })
}

/// §3.4.2 on the native backend, per algorithm: a run that migrates the
/// straggling pair off the slow node must be bit-identical to the run
/// that never migrates — migration is rollback under a new placement,
/// invisible in results.
#[test]
fn native_sssp_migration_is_bit_identical_to_migration_free() {
    let g = dataset("DBLP").unwrap().generate(0.01);
    let plain_rt = skewed_native();
    let plain = sssp_run(&plain_rt, &g, &skew_cfg("sssp", 10), &[]);
    assert_eq!(plain.migrations, 0);

    let lb_rt = skewed_native();
    let balanced = sssp_run(&lb_rt, &g, &with_balance(skew_cfg("sssp", 10)), &[]);
    assert!(balanced.migrations >= 1, "slow node must trigger migration");
    assert_eq!(lb_rt.metrics().migrations.get(), balanced.migrations);
    assert_eq!(balanced.final_state, plain.final_state);
    assert_eq!(balanced.iterations, plain.iterations);
    assert_eq!(balanced.distances, plain.distances);
}

#[test]
fn native_pagerank_migration_is_bit_identical_to_migration_free() {
    let g = dataset("Google").unwrap().generate(0.01);
    let plain_rt = skewed_native();
    let plain = pagerank_run(&plain_rt, &g, &skew_cfg("pr", 10), &[]);
    assert_eq!(plain.migrations, 0);

    let lb_rt = skewed_native();
    let balanced = pagerank_run(&lb_rt, &g, &with_balance(skew_cfg("pr", 10)), &[]);
    assert!(balanced.migrations >= 1, "slow node must trigger migration");
    assert_eq!(lb_rt.metrics().migrations.get(), balanced.migrations);
    assert_eq!(balanced.final_state, plain.final_state);
    assert_eq!(balanced.iterations, plain.iterations);
}

#[test]
fn native_kmeans_migration_is_bit_identical_to_migration_free() {
    // Enough points that a k-means iteration has measurable compute for
    // the busy EWMA to separate the slow node.
    let points = generate_points(20_000, 16, 8, 77);
    let base = skew_cfg("km", 8).with_one2all();
    let plain_rt = skewed_native();
    let plain = kmeans_run(&plain_rt, &points, &base, &[]);
    assert_eq!(plain.migrations, 0);

    let lb_rt = skewed_native();
    let balanced = kmeans_run(&lb_rt, &points, &with_balance(base), &[]);
    assert!(balanced.migrations >= 1, "slow node must trigger migration");
    assert_eq!(lb_rt.metrics().migrations.get(), balanced.migrations);
    assert_eq!(balanced.final_state, plain.final_state);
    assert_eq!(balanced.iterations, plain.iterations);
}

/// A spec launching this package's `imr-worker` binary with `job_args`
/// (the job catalog lives in `imapreduce_suite::worker`).
fn worker_spec(job_args: &[&str]) -> WorkerSpec {
    WorkerSpec::new(
        env!("CARGO_BIN_EXE_imr-worker"),
        job_args.iter().map(|s| (*s).to_owned()).collect(),
    )
}

/// SSSP over genuinely separate worker OS processes (TCP transport):
/// bit-identical to the in-process channel fabric, the virtual-time
/// engine, and the sequential reference, across task counts and both
/// triggering modes.
#[test]
fn tcp_sssp_matches_channel_sim_and_reference() {
    let g = dataset("DBLP").unwrap().generate(0.005);
    let iters = 6;
    let expect = sssp::reference_sssp_rounds(&g, 0, iters);
    for tasks in [1usize, 4] {
        for sync in [false, true] {
            let mut cfg = IterConfig::new("sssp", tasks, iters);
            if sync {
                cfg = cfg.with_sync_maps();
            }
            let sim = imr_runner(4);
            let a = sssp::run_sssp_imr(&sim, &g, 0, &cfg).unwrap();
            let nat = native_runner(4);
            let b = sssp::run_sssp_imr(&nat, &g, 0, &cfg).unwrap();
            let tcp_rt = native_runner(4);
            sssp::load_sssp_imr(&tcp_rt, &g, 0, tasks, "/s", "/t").unwrap();
            let c = tcp_rt
                .run_remote(
                    &SsspIter,
                    &worker_spec(&["sssp"]),
                    &cfg.clone().with_tcp_transport(),
                    "/s",
                    "/t",
                    "/o",
                    &[],
                )
                .unwrap();
            assert_eq!(a.final_state, c.final_state, "tasks={tasks} sync={sync}");
            assert_eq!(b.final_state, c.final_state, "tasks={tasks} sync={sync}");
            assert_eq!(a.iterations, c.iterations);
            assert_eq!(a.distances, c.distances);
            for (k, d) in &c.final_state {
                let e = expect[*k as usize];
                assert!(
                    (d - e).abs() < 1e-9 || (d.is_infinite() && e.is_infinite()),
                    "node {k}: tcp={d} ref={e}"
                );
            }
        }
    }
}

/// PageRank across processes: exact agreement with both in-process
/// engines and float-noise agreement with the reference.
#[test]
fn tcp_pagerank_matches_channel_and_sim() {
    let g = dataset("Google").unwrap().generate(0.003);
    let iters = 8;
    let nodes = g.num_nodes().to_string();
    let expect = pagerank::reference_pagerank(&g, 0.85, iters);
    for tasks in [1usize, 4] {
        for sync in [false, true] {
            let mut cfg = IterConfig::new("pr", tasks, iters);
            if sync {
                cfg = cfg.with_sync_maps();
            }
            let sim = imr_runner(4);
            let a = pagerank::run_pagerank_imr(&sim, &g, &cfg).unwrap();
            let nat = native_runner(4);
            let b = pagerank::run_pagerank_imr(&nat, &g, &cfg).unwrap();
            let tcp_rt = native_runner(4);
            pagerank::load_pagerank_imr(&tcp_rt, &g, tasks, "/s", "/t").unwrap();
            let c = tcp_rt
                .run_remote(
                    &PageRankIter::new(g.num_nodes() as u64),
                    &worker_spec(&["pagerank", &nodes]),
                    &cfg.clone().with_tcp_transport(),
                    "/s",
                    "/t",
                    "/o",
                    &[],
                )
                .unwrap();
            assert_eq!(a.final_state, c.final_state, "tasks={tasks} sync={sync}");
            assert_eq!(b.final_state, c.final_state, "tasks={tasks} sync={sync}");
            assert_eq!(a.iterations, c.iterations);
            for (k, v) in &c.final_state {
                assert!((v - expect[*k as usize]).abs() < 1e-12);
            }
        }
    }
}

/// K-means (one2all broadcast, inherently synchronous) across
/// processes: the coordinator-assembled broadcast is bit-identical to
/// the shared-slot broadcast of the in-process backends.
#[test]
fn tcp_kmeans_matches_channel_and_sim() {
    let points = generate_points(400, 5, 3, 77);
    for tasks in [1usize, 4] {
        let cfg = IterConfig::new("km", tasks, 6).with_one2all();
        let sim = imr_runner(4);
        let a = kmeans::run_kmeans_imr(&sim, &points, 3, &cfg, false).unwrap();
        let nat = native_runner(4);
        let b = kmeans::run_kmeans_imr(&nat, &points, 3, &cfg, false).unwrap();
        let tcp_rt = native_runner(4);
        kmeans::load_kmeans_imr(&tcp_rt, &points, 3, tasks, "/s", "/t").unwrap();
        let c = tcp_rt
            .run_remote(
                &KmeansIter { combiner: false },
                &worker_spec(&["kmeans", "0"]),
                &cfg.clone().with_tcp_transport(),
                "/s",
                "/t",
                "/o",
                &[],
            )
            .unwrap();
        assert_eq!(a.final_state, c.final_state, "tasks={tasks}");
        assert_eq!(b.final_state, c.final_state, "tasks={tasks}");
        assert_eq!(a.iterations, c.iterations);
    }
}

/// Distance-threshold termination is a coordinator collective on the
/// TCP path; it must stop at the same iteration with the same distance
/// trace as the in-process backends.
#[test]
fn tcp_termination_matches_channel_and_sim() {
    let g = dataset("DBLP").unwrap().generate(0.004);
    let cfg = IterConfig::new("sssp", 3, 64).with_distance_threshold(1e-12);
    let sim = imr_runner(3);
    let a = sssp::run_sssp_imr(&sim, &g, 0, &cfg).unwrap();
    let tcp_rt = native_runner(3);
    sssp::load_sssp_imr(&tcp_rt, &g, 0, 3, "/s", "/t").unwrap();
    let b = tcp_rt
        .run_remote(
            &SsspIter,
            &worker_spec(&["sssp"]),
            &cfg.clone().with_tcp_transport(),
            "/s",
            "/t",
            "/o",
            &[],
        )
        .unwrap();
    assert!(a.iterations < 64, "converged before the cap");
    assert_eq!(a.iterations, b.iterations);
    assert_eq!(a.distances, b.distances);
    assert_eq!(a.final_state, b.final_state);
}

/// The transport flag is validated on both entry points: run_remote
/// refuses a channel-transport config (and run_faults refuses a TCP
/// one, covered in the native crate's tests).
#[test]
fn run_remote_rejects_channel_transport_config() {
    let g = dataset("DBLP").unwrap().generate(0.003);
    let rt = native_runner(4);
    sssp::load_sssp_imr(&rt, &g, 0, 2, "/s", "/t").unwrap();
    let cfg = IterConfig::new("sssp", 2, 2);
    let err = rt
        .run_remote(
            &SsspIter,
            &worker_spec(&["sssp"]),
            &cfg,
            "/s",
            "/t",
            "/o",
            &[],
        )
        .unwrap_err();
    match err {
        EngineError::Config(msg) => assert!(msg.contains("with_tcp_transport"), "{msg}"),
        other => panic!("expected a configuration error, got {other}"),
    }
}

/// Asserts two delta-mode outcomes are bit-identical: same values in
/// the same key order, same check count, same distance trace.
fn assert_same_outcome<S: PartialEq + std::fmt::Debug>(
    label: &str,
    a: &IterOutcome<u32, S>,
    b: &IterOutcome<u32, S>,
) {
    assert_eq!(a.final_state, b.final_state, "{label}: states diverge");
    assert_eq!(a.iterations, b.iterations, "{label}: check counts diverge");
    assert_eq!(a.distances, b.distances, "{label}: progress traces diverge");
}

/// Barrier-free delta-accumulative PageRank (Maiter-style §3.3 taken to
/// its limit): the virtual-time sim, the native channel fabric and the
/// TCP worker processes agree bit-for-bit with each other, terminate
/// before the check cap, and land within the detector bound of the
/// synchronous fixpoint — at every task count.
#[test]
fn delta_pagerank_bounded_by_sync_fixpoint_on_all_engines() {
    let g = dataset("Google").unwrap().generate(0.003);
    let nodes = g.num_nodes().to_string();
    let eps = 1e-10;
    let sync_cfg = IterConfig::new("pr", 4, 400).with_distance_threshold(eps);
    let sync = pagerank::run_pagerank_imr(&imr_runner(4), &g, &sync_cfg).unwrap();

    for tasks in [1usize, 4] {
        let cfg = IterConfig::new("prd", tasks, 400)
            .with_accumulative_mode()
            .with_distance_threshold(eps);
        let a = pagerank::run_pagerank_delta(&imr_runner(4), &g, &cfg).unwrap();
        let b = pagerank::run_pagerank_delta(&native_runner(4), &g, &cfg).unwrap();
        let tcp_rt = native_runner(4);
        pagerank::load_pagerank_imr(&tcp_rt, &g, tasks, "/s", "/t").unwrap();
        let c = tcp_rt
            .run_remote(
                &PageRankIter::new(g.num_nodes() as u64),
                &worker_spec(&["pagerank", &nodes]),
                &cfg.clone().with_tcp_transport(),
                "/s",
                "/t",
                "/o",
                &[],
            )
            .unwrap();
        assert_same_outcome(&format!("sim vs native, tasks={tasks}"), &a, &b);
        assert_same_outcome(&format!("sim vs tcp, tasks={tasks}"), &a, &c);
        assert!(a.iterations < 400, "detector must fire before the cap");
        assert_eq!(a.final_state.len(), sync.final_state.len());
        for ((k1, v1), (k2, v2)) in sync.final_state.iter().zip(&a.final_state) {
            assert_eq!(k1, k2);
            assert!(
                (v1 - v2).abs() < 1e-8,
                "node {k1}: sync={v1} delta={v2} tasks={tasks}"
            );
        }
    }
}

/// Delta-accumulative SSSP (⊕ = min): all three backends agree
/// bit-for-bit and the fixpoint equals the Dijkstra reference.
#[test]
fn delta_sssp_matches_dijkstra_on_all_engines() {
    let g = dataset("DBLP").unwrap().generate(0.005);
    let expect = sssp::reference_sssp(&g, 0);
    for tasks in [1usize, 4] {
        let cfg = IterConfig::new("ssspd", tasks, 400)
            .with_accumulative_mode()
            .with_distance_threshold(1e-9);
        let a = sssp::run_sssp_delta(&imr_runner(4), &g, 0, &cfg).unwrap();
        let b = sssp::run_sssp_delta(&native_runner(4), &g, 0, &cfg).unwrap();
        let tcp_rt = native_runner(4);
        sssp::load_sssp_imr(&tcp_rt, &g, 0, tasks, "/s", "/t").unwrap();
        let c = tcp_rt
            .run_remote(
                &SsspIter,
                &worker_spec(&["sssp"]),
                &cfg.clone().with_tcp_transport(),
                "/s",
                "/t",
                "/o",
                &[],
            )
            .unwrap();
        assert_same_outcome(&format!("sim vs native, tasks={tasks}"), &a, &b);
        assert_same_outcome(&format!("sim vs tcp, tasks={tasks}"), &a, &c);
        assert!(a.iterations < 400, "detector must fire before the cap");
        for (k, d) in &a.final_state {
            let e = expect[*k as usize];
            assert!(
                (d - e).abs() < 1e-9 || (d.is_infinite() && e.is_infinite()),
                "node {k}: delta={d} dijkstra={e} tasks={tasks}"
            );
        }
    }
}

/// Delta-accumulative connected components (⊕ = min over labels): all
/// three backends agree bit-for-bit and match the synchronous HashMin
/// fixpoint exactly — labels are integers, so there is no float slack.
#[test]
fn delta_concomp_matches_sync_fixpoint_on_all_engines() {
    let g = dataset("DBLP").unwrap().generate(0.005);
    let sync = concomp::run_concomp_imr(&imr_runner(4), &g, 4, 200).unwrap();
    for tasks in [1usize, 4] {
        let a = concomp::run_concomp_delta(&imr_runner(4), &g, tasks, 200).unwrap();
        let b = concomp::run_concomp_delta(&native_runner(4), &g, tasks, 200).unwrap();
        let tcp_rt = native_runner(4);
        concomp::load_concomp_imr(&tcp_rt, &g, tasks, "/s", "/t").unwrap();
        let cfg = IterConfig::new("ccd", tasks, 200)
            .with_accumulative_mode()
            .with_distance_threshold(0.5)
            .with_tcp_transport();
        let c = tcp_rt
            .run_remote(
                &ConCompIter,
                &worker_spec(&["concomp"]),
                &cfg,
                "/s",
                "/t",
                "/o",
                &[],
            )
            .unwrap();
        assert_same_outcome(&format!("sim vs native, tasks={tasks}"), &a, &b);
        assert_same_outcome(&format!("sim vs tcp, tasks={tasks}"), &a, &c);
        assert!(a.iterations < 200, "detector must fire before the cap");
        assert_eq!(sync.final_state, a.final_state, "tasks={tasks}");
    }
}

/// The sim keeps its virtual-time reproducibility contract in delta
/// mode: two runs of the same config on fresh runners are bit-identical
/// in values, progress traces, check counts and simulated wall-clock,
/// including under batched priority scheduling and sparser checks.
#[test]
fn delta_sim_is_bit_reproducible_across_runs() {
    let g = dataset("Google").unwrap().generate(0.003);
    for (batch, every) in [(0usize, 1usize), (64, 2)] {
        let cfg = IterConfig::new("prd", 4, 400)
            .with_accumulative_mode()
            .with_distance_threshold(1e-10)
            .with_delta_batch(batch)
            .with_check_every(every);
        let a = pagerank::run_pagerank_delta(&imr_runner(4), &g, &cfg).unwrap();
        let b = pagerank::run_pagerank_delta(&imr_runner(4), &g, &cfg).unwrap();
        assert_same_outcome(&format!("batch={batch} every={every}"), &a, &b);
        assert_eq!(
            a.report.finished, b.report.finished,
            "virtual time must be reproducible (batch={batch} every={every})"
        );
    }
}

#[test]
fn bigger_clusters_run_faster() {
    // The scaling claim (Figs. 12-13) end to end: more EC2 instances,
    // shorter virtual time, for both engines.
    // Sample-scale compensation (as the bench harness uses) so data
    // costs dominate the fixed per-task overheads, as at full size.
    let scale = 0.01;
    let g = dataset("SSSP-s").unwrap().generate(scale);
    let mut prev_imr = f64::INFINITY;
    let mut prev_mr = f64::INFINITY;
    for n in [4usize, 16] {
        let imr = imr_runner_on(ClusterSpec::ec2(n).with_sample_scale(scale));
        let cfg = IterConfig::new("sssp", n, 4);
        let a = sssp::run_sssp_imr(&imr, &g, 0, &cfg).unwrap();
        let t_imr = a.report.finished.as_secs_f64();
        assert!(t_imr < prev_imr, "iMapReduce did not scale at n={n}");
        prev_imr = t_imr;

        let mr =
            imr_algorithms::testutil::mr_runner_on(ClusterSpec::ec2(n).with_sample_scale(scale));
        let b = sssp::run_sssp_mr(&mr, &g, 0, n, 4, None).unwrap();
        let t_mr = b.report.finished.as_secs_f64();
        assert!(t_mr < prev_mr, "MapReduce did not scale at n={n}");
        prev_mr = t_mr;
    }
}
