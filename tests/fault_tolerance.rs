//! Fault-tolerance integration: scripted node failures on real
//! workloads must recover from checkpoints to bit-identical results —
//! on the simulation engine *and* on the native threaded backend, which
//! injects the same `FailureEvent` scripts into real worker threads.

use imapreduce::{FailureEvent, FaultEvent, IterConfig, LoadBalance, WatchdogConfig};
use imr_algorithms::sssp::{self, SsspIter};
use imr_algorithms::testutil::{imr_runner_on, native_runner};
use imr_graph::dataset;
use imr_mapreduce::EngineError;
use imr_native::{NativeRunner, WorkerSpec};
use imr_simcluster::{ClusterSpec, NodeId};
use std::time::Duration;

fn run_with_failures(failures: &[FailureEvent], ckpt: usize) -> imapreduce::IterOutcome<u32, f64> {
    let g = dataset("DBLP").unwrap().generate(0.003);
    let runner = imr_runner_on(ClusterSpec::local(4));
    sssp::load_sssp_imr(&runner, &g, 0, 4, "/s", "/t").unwrap();
    let cfg = IterConfig::new("sssp", 4, 8).with_checkpoint_interval(ckpt);
    runner
        .run(&SsspIter, &cfg, "/s", "/t", "/o", failures)
        .unwrap()
}

/// The same SSSP scenario on the native threaded backend: a fresh
/// runner per run, real worker threads, scripted failures injected at
/// exact (pair, iteration) points.
fn run_native_with_failures(
    failures: &[FailureEvent],
    ckpt: usize,
) -> imapreduce::IterOutcome<u32, f64> {
    let g = dataset("DBLP").unwrap().generate(0.003);
    let runner = native_runner(4);
    sssp::load_sssp_imr(&runner, &g, 0, 4, "/s", "/t").unwrap();
    let cfg = IterConfig::new("sssp", 4, 8).with_checkpoint_interval(ckpt);
    runner
        .run(&SsspIter, &cfg, "/s", "/t", "/o", failures)
        .unwrap()
}

#[test]
fn single_failure_recovers_exactly() {
    let clean = run_with_failures(&[], 2);
    let failed = run_with_failures(
        &[FailureEvent {
            node: NodeId(1),
            at_iteration: 4,
        }],
        2,
    );
    assert_eq!(failed.recoveries, 1);
    assert_eq!(clean.final_state, failed.final_state);
    assert!(failed.report.finished > clean.report.finished);
}

#[test]
fn multiple_failures_recover_exactly() {
    let clean = run_with_failures(&[], 2);
    let failed = run_with_failures(
        &[
            FailureEvent {
                node: NodeId(1),
                at_iteration: 3,
            },
            FailureEvent {
                node: NodeId(3),
                at_iteration: 6,
            },
        ],
        2,
    );
    assert_eq!(failed.recoveries, 2);
    assert_eq!(clean.final_state, failed.final_state);
}

#[test]
fn failure_immediately_after_checkpoint_rolls_back_minimally() {
    let clean = run_with_failures(&[], 4);
    // Checkpoint at iteration 4, failure right after.
    let failed = run_with_failures(
        &[FailureEvent {
            node: NodeId(2),
            at_iteration: 4,
        }],
        4,
    );
    assert_eq!(clean.final_state, failed.final_state);
    assert_eq!(clean.iterations, failed.iterations);
}

#[test]
fn load_balancing_and_failures_compose() {
    let g = dataset("DBLP").unwrap().generate(0.003);
    let mut spec = ClusterSpec::local(4);
    spec.nodes[0].speed = 0.2;
    let runner = imr_runner_on(spec);
    sssp::load_sssp_imr(&runner, &g, 0, 4, "/s", "/t").unwrap();
    let cfg = IterConfig::new("sssp", 4, 10)
        .with_checkpoint_interval(1)
        .with_load_balance(LoadBalance {
            deviation: 0.3,
            max_migrations: 2,
        });
    let failures = [FailureEvent {
        node: NodeId(3),
        at_iteration: 6,
    }];
    let out = runner
        .run(&SsspIter, &cfg, "/s", "/t", "/o", &failures)
        .unwrap();
    assert_eq!(out.recoveries, 1);

    // Results still match the reference despite migration + failure.
    let expect = sssp::reference_sssp_rounds(&g, 0, 10);
    for (k, d) in &out.final_state {
        let e = expect[*k as usize];
        assert!((d - e).abs() < 1e-9 || (d.is_infinite() && e.is_infinite()));
    }
}

#[test]
fn native_single_failure_recovers_exactly() {
    let clean = run_native_with_failures(&[], 2);
    let failed = run_native_with_failures(
        &[FailureEvent {
            node: NodeId(1),
            at_iteration: 4,
        }],
        2,
    );
    assert_eq!(failed.recoveries, 1);
    assert_eq!(clean.final_state, failed.final_state);
    assert_eq!(clean.iterations, failed.iterations);
}

#[test]
fn native_multiple_failures_recover_exactly() {
    let clean = run_native_with_failures(&[], 2);
    let failed = run_native_with_failures(
        &[
            FailureEvent {
                node: NodeId(1),
                at_iteration: 3,
            },
            FailureEvent {
                node: NodeId(3),
                at_iteration: 6,
            },
        ],
        2,
    );
    assert_eq!(failed.recoveries, 2);
    assert_eq!(clean.final_state, failed.final_state);
}

#[test]
fn native_failure_on_checkpoint_iteration_recovers() {
    // The snapshot for iteration 4 is written before the scripted exit
    // fires, so the rollback replays from 4, not 0.
    let clean = run_native_with_failures(&[], 4);
    let failed = run_native_with_failures(
        &[FailureEvent {
            node: NodeId(2),
            at_iteration: 4,
        }],
        4,
    );
    assert_eq!(failed.recoveries, 1);
    assert_eq!(clean.final_state, failed.final_state);
    assert_eq!(clean.iterations, failed.iterations);
}

#[test]
fn both_engines_agree_under_failures() {
    let failures = [
        FailureEvent {
            node: NodeId(0),
            at_iteration: 2,
        },
        FailureEvent {
            node: NodeId(2),
            at_iteration: 5,
        },
    ];
    let sim = run_with_failures(&failures, 2);
    let native = run_native_with_failures(&failures, 2);
    assert_eq!(sim.recoveries, 2);
    assert_eq!(native.recoveries, 2);
    assert_eq!(sim.final_state, native.final_state);
    assert_eq!(sim.iterations, native.iterations);
}

#[test]
fn native_failure_without_checkpointing_is_a_clear_error() {
    // With checkpointing disabled there is no snapshot to roll back to;
    // the native backend must refuse up front instead of hanging.
    let g = dataset("DBLP").unwrap().generate(0.003);
    let runner = native_runner(4);
    sssp::load_sssp_imr(&runner, &g, 0, 4, "/s", "/t").unwrap();
    let cfg = IterConfig::new("sssp", 4, 8).with_checkpoint_interval(0);
    let failures = [FailureEvent {
        node: NodeId(1),
        at_iteration: 4,
    }];
    let err = runner
        .run(&SsspIter, &cfg, "/s", "/t", "/o", &failures)
        .unwrap_err();
    match err {
        EngineError::Config(msg) => assert!(msg.contains("checkpoint_interval")),
        other => panic!("expected a configuration error, got {other}"),
    }
}

/// The self-healing acceptance path: a pair wedges mid-job with *no*
/// scripted kill anywhere, and only the supervisor watchdog can notice
/// the stall, declare the pair failed, and drive checkpoint rollback.
/// The result must still be bit-identical to a clean run.
#[test]
fn native_hang_recovers_via_watchdog_bit_identically() {
    let g = dataset("DBLP").unwrap().generate(0.003);
    let cfg = IterConfig::new("sssp", 4, 8)
        .with_checkpoint_interval(2)
        .with_watchdog(WatchdogConfig {
            poll: Duration::from_millis(5),
            stall_timeout: Duration::from_millis(300),
        });

    let clean_rt = native_runner(4);
    sssp::load_sssp_imr(&clean_rt, &g, 0, 4, "/s", "/t").unwrap();
    let clean = clean_rt
        .run(&SsspIter, &cfg, "/s", "/t", "/o", &[])
        .unwrap();

    let hung_rt = native_runner(4);
    sssp::load_sssp_imr(&hung_rt, &g, 0, 4, "/s", "/t").unwrap();
    let hung = hung_rt
        .run_faults(
            &SsspIter,
            &cfg,
            "/s",
            "/t",
            "/o",
            &[FaultEvent::Hang {
                node: NodeId(2),
                at_iteration: 4,
            }],
        )
        .unwrap();
    assert_eq!(hung.recoveries, 1);
    assert_eq!(hung_rt.metrics().stalls_detected.get(), 1);
    assert_eq!(clean.final_state, hung.final_state);
    assert_eq!(clean.iterations, hung.iterations);
}

/// The simulation engine models the same watchdog: a hang is detected
/// only after `stall_timeout` of virtual-time silence, so it costs more
/// virtual time than an equivalent kill but recovers identically.
#[test]
fn sim_hang_recovery_counts_a_stall_and_costs_the_timeout() {
    let g = dataset("DBLP").unwrap().generate(0.003);
    let cfg = IterConfig::new("sssp", 4, 8)
        .with_checkpoint_interval(2)
        .with_watchdog(WatchdogConfig::default());

    let clean_rt = imr_runner_on(ClusterSpec::local(4));
    sssp::load_sssp_imr(&clean_rt, &g, 0, 4, "/s", "/t").unwrap();
    let clean = clean_rt
        .run(&SsspIter, &cfg, "/s", "/t", "/o", &[])
        .unwrap();

    let hang = [FaultEvent::Hang {
        node: NodeId(1),
        at_iteration: 4,
    }];
    let hung_rt = imr_runner_on(ClusterSpec::local(4));
    sssp::load_sssp_imr(&hung_rt, &g, 0, 4, "/s", "/t").unwrap();
    let hung = hung_rt
        .run_faults(&SsspIter, &cfg, "/s", "/t", "/o", &hang)
        .unwrap();
    assert_eq!(hung.recoveries, 1);
    assert_eq!(hung_rt.metrics().stalls_detected.get(), 1);
    assert_eq!(clean.final_state, hung.final_state);
    assert_eq!(clean.iterations, hung.iterations);
    assert!(hung.report.finished > clean.report.finished);

    // A kill at the same point is detected immediately, so the hang's
    // watchdog timeout is visible as extra virtual recovery time.
    let kill = [FaultEvent::Kill {
        node: NodeId(1),
        at_iteration: 4,
    }];
    let killed_rt = imr_runner_on(ClusterSpec::local(4));
    sssp::load_sssp_imr(&killed_rt, &g, 0, 4, "/s", "/t").unwrap();
    let killed = killed_rt
        .run_faults(&SsspIter, &cfg, "/s", "/t", "/o", &kill)
        .unwrap();
    assert_eq!(killed.final_state, hung.final_state);
    assert!(hung.report.finished > killed.report.finished);
}

/// Delays are degradation, not death: a slow-but-progressing node must
/// ride under the watchdog without triggering a single stall, on both
/// engines, and leave results untouched.
#[test]
fn delays_do_not_trip_the_watchdog_on_either_engine() {
    let g = dataset("DBLP").unwrap().generate(0.003);
    let cfg = IterConfig::new("sssp", 4, 8).with_watchdog(WatchdogConfig {
        poll: Duration::from_millis(5),
        stall_timeout: Duration::from_millis(500),
    });
    let delays = [
        FaultEvent::Delay {
            node: NodeId(0),
            at_iteration: 2,
            millis: 60,
        },
        FaultEvent::Delay {
            node: NodeId(2),
            at_iteration: 5,
            millis: 60,
        },
    ];

    let sim_clean_rt = imr_runner_on(ClusterSpec::local(4));
    sssp::load_sssp_imr(&sim_clean_rt, &g, 0, 4, "/s", "/t").unwrap();
    let sim_clean = sim_clean_rt
        .run(&SsspIter, &cfg, "/s", "/t", "/o", &[])
        .unwrap();
    let sim_rt = imr_runner_on(ClusterSpec::local(4));
    sssp::load_sssp_imr(&sim_rt, &g, 0, 4, "/s", "/t").unwrap();
    let sim = sim_rt
        .run_faults(&SsspIter, &cfg, "/s", "/t", "/o", &delays)
        .unwrap();
    assert_eq!(sim.recoveries, 0);
    assert_eq!(sim_rt.metrics().stalls_detected.get(), 0);
    assert_eq!(sim.final_state, sim_clean.final_state);
    assert!(sim.report.finished > sim_clean.report.finished);

    let nat_rt = native_runner(4);
    sssp::load_sssp_imr(&nat_rt, &g, 0, 4, "/s", "/t").unwrap();
    let nat = nat_rt
        .run_faults(&SsspIter, &cfg, "/s", "/t", "/o", &delays)
        .unwrap();
    assert_eq!(nat.recoveries, 0);
    assert_eq!(nat_rt.metrics().stalls_detected.get(), 0);
    assert_eq!(nat.final_state, sim.final_state);
    assert_eq!(nat.iterations, sim.iterations);
}

/// A spec launching the `imr-worker` binary on the SSSP job.
fn sssp_worker() -> WorkerSpec {
    WorkerSpec::new(env!("CARGO_BIN_EXE_imr-worker"), vec!["sssp".to_owned()])
}

/// A fresh native runner with the DBLP SSSP fixture loaded for 4 tasks.
fn tcp_fixture() -> NativeRunner {
    let g = dataset("DBLP").unwrap().generate(0.003);
    let runner = native_runner(4);
    sssp::load_sssp_imr(&runner, &g, 0, 4, "/s", "/t").unwrap();
    runner
}

fn run_tcp(
    runner: &NativeRunner,
    spec: &WorkerSpec,
    cfg: &IterConfig,
    faults: &[FaultEvent],
) -> imapreduce::IterOutcome<u32, f64> {
    runner
        .run_remote(
            &SsspIter,
            spec,
            &cfg.clone().with_tcp_transport(),
            "/s",
            "/t",
            "/o",
            faults,
        )
        .unwrap()
}

/// A scripted kill on the multi-process TCP backend: the killed worker
/// process reports the induced exit and dies; the coordinator tears the
/// generation down, respawns fresh processes, and the replayed job is
/// bit-identical to both the clean TCP run and the channel-transport
/// run under the same script.
#[test]
fn tcp_kill_recovers_bit_identically_to_clean_and_channel() {
    let cfg = IterConfig::new("sssp", 4, 8).with_checkpoint_interval(2);
    let kill = [FaultEvent::Kill {
        node: NodeId(1),
        at_iteration: 4,
    }];
    let clean = run_tcp(&tcp_fixture(), &sssp_worker(), &cfg, &[]);
    let killed = run_tcp(&tcp_fixture(), &sssp_worker(), &cfg, &kill);
    let channel = run_native_with_failures(
        &[FailureEvent {
            node: NodeId(1),
            at_iteration: 4,
        }],
        2,
    );
    assert_eq!(killed.recoveries, 1);
    assert_eq!(clean.final_state, killed.final_state);
    assert_eq!(clean.iterations, killed.iterations);
    assert_eq!(clean.distances, killed.distances);
    assert_eq!(channel.final_state, killed.final_state);
    assert_eq!(channel.iterations, killed.iterations);
}

/// A hang in a worker *process* is invisible except through silence:
/// the coordinator's watchdog (fed by wire heartbeats) must detect the
/// stall, poison the generation over TCP, and recover bit-identically.
#[test]
fn tcp_hang_recovers_via_watchdog_bit_identically() {
    // The stall timeout needs headroom over process spawn + connect,
    // which is real wall-clock on the TCP backend.
    let cfg = IterConfig::new("sssp", 4, 8)
        .with_checkpoint_interval(2)
        .with_watchdog(WatchdogConfig {
            poll: Duration::from_millis(5),
            stall_timeout: Duration::from_secs(2),
        });
    let clean = run_tcp(&tcp_fixture(), &sssp_worker(), &cfg, &[]);
    let hung_rt = tcp_fixture();
    let hung = run_tcp(
        &hung_rt,
        &sssp_worker(),
        &cfg,
        &[FaultEvent::Hang {
            node: NodeId(2),
            at_iteration: 4,
        }],
    );
    assert_eq!(hung.recoveries, 1);
    assert_eq!(hung_rt.metrics().stalls_detected.get(), 1);
    assert_eq!(clean.final_state, hung.final_state);
    assert_eq!(clean.iterations, hung.iterations);
}

/// An *unscripted* worker loss: the process exits abruptly mid-job (no
/// outcome frame — the connection just drops). The coordinator must
/// surface this as a recoverable fault, not a hang, and the replayed
/// result must match the clean run exactly.
#[test]
fn tcp_unscripted_worker_crash_recovers_exactly() {
    let cfg = IterConfig::new("sssp", 4, 8).with_checkpoint_interval(2);
    let clean = run_tcp(&tcp_fixture(), &sssp_worker(), &cfg, &[]);
    let crashed = run_tcp(&tcp_fixture(), &sssp_worker().with_crash(1, 4), &cfg, &[]);
    assert_eq!(crashed.recoveries, 1);
    assert_eq!(clean.final_state, crashed.final_state);
    assert_eq!(clean.iterations, crashed.iterations);
    assert_eq!(clean.distances, crashed.distances);
}

/// Delta-mode fault fixture: PageRank in barrier-free accumulative
/// mode converges over dozens of termination checks at this threshold,
/// leaving plenty of mid-propagation room for a scripted fault at
/// check 3 with checkpoints every 2 checks.
fn delta_cfg() -> IterConfig {
    IterConfig::new("prd", 4, 400)
        .with_accumulative_mode()
        .with_distance_threshold(1e-6)
        .with_checkpoint_interval(2)
        .with_watchdog(WatchdogConfig {
            poll: Duration::from_millis(5),
            stall_timeout: Duration::from_secs(2),
        })
}

/// Runs delta-mode PageRank on a fresh native runner with `faults`,
/// over channels (`tcp == false`) or worker processes (`tcp == true`),
/// returning the outcome, the rollback-span count from the trace, and
/// the flight-recorder artifact the rollback dumped into the DFS (if
/// any).
fn run_delta_faulted(
    g: &imr_graph::Graph,
    faults: &[FaultEvent],
    tcp: bool,
) -> (imapreduce::IterOutcome<u32, f64>, usize, Option<String>) {
    use imr_algorithms::pagerank::{self, PageRankIter};
    use imr_trace::{TraceBuffer, TraceKind};
    use std::sync::Arc;

    let trace = Arc::new(TraceBuffer::with_capacity(1 << 16));
    let runner = native_runner(4).with_trace(Arc::clone(&trace));
    pagerank::load_pagerank_imr(&runner, g, 4, "/s", "/t").unwrap();
    let job = PageRankIter::new(g.num_nodes() as u64);
    let out = if tcp {
        let nodes = g.num_nodes().to_string();
        let spec = WorkerSpec::new(
            env!("CARGO_BIN_EXE_imr-worker"),
            vec!["pagerank".to_owned(), nodes],
        );
        runner
            .run_remote(
                &job,
                &spec,
                &delta_cfg().with_tcp_transport(),
                "/s",
                "/t",
                "/o",
                faults,
            )
            .unwrap()
    } else {
        runner
            .run_accumulative(&job, &delta_cfg(), "/s", "/t", "/o", faults)
            .unwrap()
    };
    let rollbacks = trace
        .snapshot()
        .iter()
        .filter(|e| matches!(e.kind, TraceKind::Rollback { .. }))
        .count();
    let mut clock = imr_simcluster::TaskClock::default();
    let flight = runner
        .dfs()
        .read(&imr_trace::flight_path("/o", 0), NodeId(0), &mut clock)
        .ok()
        .map(|b| String::from_utf8_lossy(&b).into_owned());
    (out, rollbacks, flight)
}

/// A scripted kill mid-delta-propagation, on the channel fabric and on
/// TCP worker processes: recovery rolls the per-key (value, delta)
/// stores back to the last checkpointed epoch, the recovered run is
/// bit-identical to the clean one, and the incident leaves exactly one
/// `Rollback` trace span plus a flight-recorder artifact in the DFS.
#[test]
fn delta_kill_recovers_with_one_rollback_on_channel_and_tcp() {
    let g = dataset("Google").unwrap().generate(0.002);
    let kill = [FaultEvent::Kill {
        node: NodeId(1),
        at_iteration: 3,
    }];
    for tcp in [false, true] {
        let label = if tcp { "tcp" } else { "channel" };
        let (clean, clean_rollbacks, _) = run_delta_faulted(&g, &[], tcp);
        let (killed, rollbacks, flight) = run_delta_faulted(&g, &kill, tcp);
        assert!(clean.iterations < 400, "{label}: clean run must converge");
        assert_eq!(clean_rollbacks, 0, "{label}: clean run must not roll back");
        assert_eq!(killed.recoveries, 1, "{label}: one kill, one recovery");
        assert_eq!(rollbacks, 1, "{label}: exactly one Rollback span");
        let flight = flight.unwrap_or_else(|| panic!("{label}: flight artifact missing"));
        assert!(
            flight.contains("Rollback"),
            "{label}: flight artifact must contain the Rollback event"
        );
        assert_eq!(clean.final_state, killed.final_state, "{label}");
        assert_eq!(clean.iterations, killed.iterations, "{label}");
        assert_eq!(clean.distances, killed.distances, "{label}");
    }
}

/// A scripted hang mid-delta-propagation: only the watchdog's stall
/// timeout can notice it (the pair goes silent between heartbeats), and
/// recovery is identical to the kill case — one `Rollback` span, one
/// flight artifact, bit-identical converged result — on both the
/// channel fabric and TCP worker processes.
#[test]
fn delta_hang_recovers_with_one_rollback_on_channel_and_tcp() {
    let g = dataset("Google").unwrap().generate(0.002);
    let hang = [FaultEvent::Hang {
        node: NodeId(2),
        at_iteration: 3,
    }];
    for tcp in [false, true] {
        let label = if tcp { "tcp" } else { "channel" };
        let (clean, _, _) = run_delta_faulted(&g, &[], tcp);
        let (hung, rollbacks, flight) = run_delta_faulted(&g, &hang, tcp);
        assert_eq!(hung.recoveries, 1, "{label}: one hang, one recovery");
        assert_eq!(rollbacks, 1, "{label}: exactly one Rollback span");
        assert!(
            flight
                .unwrap_or_else(|| panic!("{label}: flight artifact missing"))
                .contains("Rollback"),
            "{label}: flight artifact must contain the Rollback event"
        );
        assert_eq!(clean.final_state, hung.final_state, "{label}");
        assert_eq!(clean.iterations, hung.iterations, "{label}");
        assert_eq!(clean.distances, hung.distances, "{label}");
    }
}

#[test]
fn dfs_survives_node_loss_with_replication() {
    // The static data is replicated on the DFS, so losing a node must
    // not lose any partition (replication 3 over 4 nodes).
    let g = dataset("DBLP").unwrap().generate(0.002);
    let runner = imr_runner_on(ClusterSpec::local(4));
    sssp::load_sssp_imr(&runner, &g, 0, 4, "/s", "/t").unwrap();
    runner.dfs().fail_node(NodeId(0));
    for p in 0..4 {
        let mut clock = imr_simcluster::TaskClock::default();
        let part: Vec<(u32, sssp::Adj)> =
            imr_mapreduce::io::read_part(runner.dfs(), "/t", p, NodeId(1), &mut clock).unwrap();
        assert!(!part.is_empty() || g.num_nodes() < 4);
    }
}
