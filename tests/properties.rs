//! Workspace-level property tests: cross-crate invariants on random
//! inputs.

use imapreduce::{FailureEvent, FaultEvent, IterConfig, WatchdogConfig};
use imr_algorithms::sssp::SsspIter;
use imr_algorithms::testutil::{imr_runner, native_runner};
use imr_algorithms::{pagerank, sssp};
use imr_graph::{
    generate_graph, generate_weighted_graph, pagerank_degree_dist, sssp_degree_dist,
    sssp_weight_dist,
};
use imr_simcluster::NodeId;
use proptest::prelude::*;
use std::time::Duration;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// SSSP invariants on arbitrary weighted graphs: distances never
    /// increase across iterations, source stays 0, and every finite
    /// distance is witnessed by an in-edge relaxation (fixed point).
    #[test]
    fn sssp_fixed_point_invariants(seed in any::<u64>(), n in 30usize..100) {
        let g = generate_weighted_graph(n, n as u64 * 3, sssp_degree_dist(), sssp_weight_dist(), seed);
        let r = imr_runner(3);
        let cfg = IterConfig::new("sssp", 3, 64).with_distance_threshold(1e-12);
        let out = sssp::run_sssp_imr(&r, &g, 0, &cfg).unwrap();
        let dist: Vec<f64> = out.final_state.iter().map(|&(_, d)| d).collect();
        prop_assert_eq!(dist[0], 0.0);
        // Fixed point: no edge can still relax.
        for u in 0..n as u32 {
            if dist[u as usize].is_finite() {
                for (v, w) in g.weighted_neighbors(u) {
                    prop_assert!(
                        dist[v as usize] <= dist[u as usize] + f64::from(w) + 1e-9,
                        "edge {}->{} still relaxes", u, v
                    );
                }
            }
        }
    }

    /// PageRank invariants: ranks positive, bounded by 1, and the total
    /// never exceeds 1 (dangling mass only leaks out).
    #[test]
    fn pagerank_mass_invariants(seed in any::<u64>(), n in 30usize..100) {
        let g = generate_graph(n, n as u64 * 3, pagerank_degree_dist(), seed);
        let r = imr_runner(2);
        let cfg = IterConfig::new("pr", 2, 6);
        let out = pagerank::run_pagerank_imr(&r, &g, &cfg).unwrap();
        let total: f64 = out.final_state.iter().map(|&(_, v)| v).sum();
        prop_assert!(total <= 1.0 + 1e-9, "mass {total}");
        for (k, v) in &out.final_state {
            prop_assert!(*v > 0.0 && *v <= 1.0, "rank of {k} is {v}");
        }
    }

    /// Virtual timelines are monotone: each iteration completes
    /// strictly after the previous one, and the job finishes after the
    /// last iteration.
    #[test]
    fn timelines_are_monotone(seed in any::<u64>(), n in 20usize..60, iters in 2usize..6) {
        let g = generate_graph(n, n as u64 * 2, pagerank_degree_dist(), seed);
        let r = imr_runner(2);
        let cfg = IterConfig::new("pr", 2, iters);
        let out = pagerank::run_pagerank_imr(&r, &g, &cfg).unwrap();
        let times = &out.report.iteration_done;
        prop_assert_eq!(times.len(), iters);
        for w in times.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        prop_assert!(out.report.finished >= *times.last().unwrap());
    }

    /// The native multi-threaded backend, running asynchronously on
    /// several worker threads, reproduces the sequential SSSP reference
    /// bit for bit on arbitrary graphs (min-relaxation is
    /// order-independent, so thread interleaving must not show).
    #[test]
    fn native_async_matches_sequential_reference(seed in any::<u64>(), n in 20usize..80) {
        let g = generate_weighted_graph(n, n as u64 * 3, sssp_degree_dist(), sssp_weight_dist(), seed);
        let iters = 8;
        let r = native_runner(3);
        let cfg = IterConfig::new("sssp", 3, iters);
        let out = sssp::run_sssp_imr(&r, &g, 0, &cfg).unwrap();
        let expect = sssp::reference_sssp_rounds(&g, 0, iters);
        prop_assert_eq!(out.final_state.len(), n);
        for (k, d) in &out.final_state {
            let e = expect[*k as usize];
            prop_assert!(
                *d == e || (d.is_infinite() && e.is_infinite()),
                "node {}: native={} ref={}", k, d, e
            );
        }
    }

    /// Native checkpoint/rollback recovery under random failure
    /// schedules: whatever the (node, iteration) script — including
    /// back-to-back failures and a failure on the checkpoint iteration
    /// itself, both forced below — the recovered run is bit-identical
    /// to a failure-free run and matches the sequential reference.
    #[test]
    fn native_recovery_is_invisible_under_random_schedules(
        seed in any::<u64>(),
        n in 20usize..60,
        interval in 1usize..4,
        schedule in proptest::collection::vec((0u32..4, 1usize..7), 0..4),
    ) {
        let g = generate_weighted_graph(n, n as u64 * 3, sssp_degree_dist(), sssp_weight_dist(), seed);
        let iters = 8;
        let mut failures: Vec<FailureEvent> = schedule
            .iter()
            .map(|&(node, at)| FailureEvent { node: NodeId(node), at_iteration: at })
            .collect();
        // Always cover the two nastiest cases: a failure on the very
        // iteration that checkpoints, and the same failure again back
        // to back. (Events the replay never reaches again — e.g. a
        // duplicate behind an already-committed checkpoint — stay
        // pending and are simply never consumed.)
        failures.push(FailureEvent { node: NodeId(0), at_iteration: interval });
        failures.push(FailureEvent { node: NodeId(0), at_iteration: interval });

        let cfg = IterConfig::new("sssp", 4, iters).with_checkpoint_interval(interval);
        let failed = {
            let r = native_runner(4);
            sssp::load_sssp_imr(&r, &g, 0, 4, "/s", "/t").unwrap();
            r.run(&SsspIter, &cfg, "/s", "/t", "/o", &failures).unwrap()
        };
        let clean = {
            let r = native_runner(4);
            sssp::load_sssp_imr(&r, &g, 0, 4, "/s", "/t").unwrap();
            r.run(&SsspIter, &cfg, "/s", "/t", "/o", &[]).unwrap()
        };
        prop_assert!(failed.recoveries >= 1, "forced failure never fired");
        prop_assert_eq!(&failed.final_state, &clean.final_state);
        prop_assert_eq!(failed.iterations, clean.iterations);
        prop_assert_eq!(&failed.distances, &clean.distances);
        let expect = sssp::reference_sssp_rounds(&g, 0, iters);
        for (k, d) in &failed.final_state {
            let e = expect[*k as usize];
            prop_assert!(
                *d == e || (d.is_infinite() && e.is_infinite()),
                "node {}: recovered={} ref={}", k, d, e
            );
        }
    }

    /// Mixed kill/hang schedules on the native backend: killed pairs
    /// are detected instantly, hung pairs only through the watchdog's
    /// stall timeout — and recovery from either (including both in the
    /// same generation) leaves the run bit-identical to a clean one.
    #[test]
    fn native_mixed_kill_hang_schedules_are_invisible(
        seed in any::<u64>(),
        n in 20usize..60,
        schedule in proptest::collection::vec((0u32..4, 1usize..7, any::<bool>()), 0..3),
    ) {
        let g = generate_weighted_graph(n, n as u64 * 3, sssp_degree_dist(), sssp_weight_dist(), seed);
        let iters = 8;
        let mut faults: Vec<FaultEvent> = schedule
            .iter()
            .map(|&(node, at, hang)| if hang {
                FaultEvent::Hang { node: NodeId(node), at_iteration: at }
            } else {
                FaultEvent::Kill { node: NodeId(node), at_iteration: at }
            })
            .collect();
        // Always include one guaranteed hang so every case exercises
        // the watchdog path at least once.
        faults.push(FaultEvent::Hang { node: NodeId(1), at_iteration: 3 });

        let cfg = IterConfig::new("sssp", 4, iters)
            .with_checkpoint_interval(2)
            .with_watchdog(WatchdogConfig {
                poll: Duration::from_millis(5),
                stall_timeout: Duration::from_millis(150),
            });
        let failed = {
            let r = native_runner(4);
            sssp::load_sssp_imr(&r, &g, 0, 4, "/s", "/t").unwrap();
            r.run_faults(&SsspIter, &cfg, "/s", "/t", "/o", &faults).unwrap()
        };
        let clean = {
            let r = native_runner(4);
            sssp::load_sssp_imr(&r, &g, 0, 4, "/s", "/t").unwrap();
            r.run(&SsspIter, &cfg, "/s", "/t", "/o", &[]).unwrap()
        };
        prop_assert!(failed.recoveries >= 1, "forced hang never fired");
        prop_assert_eq!(&failed.final_state, &clean.final_state);
        prop_assert_eq!(failed.iterations, clean.iterations);
        prop_assert_eq!(&failed.distances, &clean.distances);
    }

    /// Sync-mode native runs are deterministic: two runs over the same
    /// inputs produce identical states, distances and iteration counts.
    #[test]
    fn native_sync_is_deterministic(seed in any::<u64>(), n in 20usize..60) {
        let g = generate_graph(n, n as u64 * 3, pagerank_degree_dist(), seed);
        let cfg = IterConfig::new("pr", 4, 5).with_sync_maps().with_distance_threshold(1e-9);
        let a = pagerank::run_pagerank_imr(&native_runner(2), &g, &cfg).unwrap();
        let b = pagerank::run_pagerank_imr(&native_runner(2), &g, &cfg).unwrap();
        prop_assert_eq!(a.final_state, b.final_state);
        prop_assert_eq!(a.distances, b.distances);
        prop_assert_eq!(a.iterations, b.iterations);
    }
}
