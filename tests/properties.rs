//! Workspace-level property tests: cross-crate invariants on random
//! inputs.

use imapreduce::IterConfig;
use imr_algorithms::testutil::imr_runner;
use imr_algorithms::{pagerank, sssp};
use imr_graph::{
    generate_graph, generate_weighted_graph, pagerank_degree_dist, sssp_degree_dist,
    sssp_weight_dist,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// SSSP invariants on arbitrary weighted graphs: distances never
    /// increase across iterations, source stays 0, and every finite
    /// distance is witnessed by an in-edge relaxation (fixed point).
    #[test]
    fn sssp_fixed_point_invariants(seed in any::<u64>(), n in 30usize..100) {
        let g = generate_weighted_graph(n, n as u64 * 3, sssp_degree_dist(), sssp_weight_dist(), seed);
        let r = imr_runner(3);
        let cfg = IterConfig::new("sssp", 3, 64).with_distance_threshold(1e-12);
        let out = sssp::run_sssp_imr(&r, &g, 0, &cfg).unwrap();
        let dist: Vec<f64> = out.final_state.iter().map(|&(_, d)| d).collect();
        prop_assert_eq!(dist[0], 0.0);
        // Fixed point: no edge can still relax.
        for u in 0..n as u32 {
            if dist[u as usize].is_finite() {
                for (v, w) in g.weighted_neighbors(u) {
                    prop_assert!(
                        dist[v as usize] <= dist[u as usize] + f64::from(w) + 1e-9,
                        "edge {}->{} still relaxes", u, v
                    );
                }
            }
        }
    }

    /// PageRank invariants: ranks positive, bounded by 1, and the total
    /// never exceeds 1 (dangling mass only leaks out).
    #[test]
    fn pagerank_mass_invariants(seed in any::<u64>(), n in 30usize..100) {
        let g = generate_graph(n, n as u64 * 3, pagerank_degree_dist(), seed);
        let r = imr_runner(2);
        let cfg = IterConfig::new("pr", 2, 6);
        let out = pagerank::run_pagerank_imr(&r, &g, &cfg).unwrap();
        let total: f64 = out.final_state.iter().map(|&(_, v)| v).sum();
        prop_assert!(total <= 1.0 + 1e-9, "mass {total}");
        for (k, v) in &out.final_state {
            prop_assert!(*v > 0.0 && *v <= 1.0, "rank of {k} is {v}");
        }
    }

    /// Virtual timelines are monotone: each iteration completes
    /// strictly after the previous one, and the job finishes after the
    /// last iteration.
    #[test]
    fn timelines_are_monotone(seed in any::<u64>(), n in 20usize..60, iters in 2usize..6) {
        let g = generate_graph(n, n as u64 * 2, pagerank_degree_dist(), seed);
        let r = imr_runner(2);
        let cfg = IterConfig::new("pr", 2, iters);
        let out = pagerank::run_pagerank_imr(&r, &g, &cfg).unwrap();
        let times = &out.report.iteration_done;
        prop_assert_eq!(times.len(), iters);
        for w in times.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        prop_assert!(out.report.finished >= *times.last().unwrap());
    }
}
