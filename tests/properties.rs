//! Workspace-level property tests: cross-crate invariants on random
//! inputs.

use imapreduce::{FailureEvent, FaultEvent, IterConfig, WatchdogConfig};
use imr_algorithms::sssp::SsspIter;
use imr_algorithms::testutil::{imr_runner, native_runner};
use imr_algorithms::{pagerank, sssp};
use imr_graph::{
    generate_graph, generate_weighted_graph, pagerank_degree_dist, sssp_degree_dist,
    sssp_weight_dist,
};
use imr_simcluster::NodeId;
use proptest::prelude::*;
use std::time::Duration;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// SSSP invariants on arbitrary weighted graphs: distances never
    /// increase across iterations, source stays 0, and every finite
    /// distance is witnessed by an in-edge relaxation (fixed point).
    #[test]
    fn sssp_fixed_point_invariants(seed in any::<u64>(), n in 30usize..100) {
        let g = generate_weighted_graph(n, n as u64 * 3, sssp_degree_dist(), sssp_weight_dist(), seed);
        let r = imr_runner(3);
        let cfg = IterConfig::new("sssp", 3, 64).with_distance_threshold(1e-12);
        let out = sssp::run_sssp_imr(&r, &g, 0, &cfg).unwrap();
        let dist: Vec<f64> = out.final_state.iter().map(|&(_, d)| d).collect();
        prop_assert_eq!(dist[0], 0.0);
        // Fixed point: no edge can still relax.
        for u in 0..n as u32 {
            if dist[u as usize].is_finite() {
                for (v, w) in g.weighted_neighbors(u) {
                    prop_assert!(
                        dist[v as usize] <= dist[u as usize] + f64::from(w) + 1e-9,
                        "edge {}->{} still relaxes", u, v
                    );
                }
            }
        }
    }

    /// PageRank invariants: ranks positive, bounded by 1, and the total
    /// never exceeds 1 (dangling mass only leaks out).
    #[test]
    fn pagerank_mass_invariants(seed in any::<u64>(), n in 30usize..100) {
        let g = generate_graph(n, n as u64 * 3, pagerank_degree_dist(), seed);
        let r = imr_runner(2);
        let cfg = IterConfig::new("pr", 2, 6);
        let out = pagerank::run_pagerank_imr(&r, &g, &cfg).unwrap();
        let total: f64 = out.final_state.iter().map(|&(_, v)| v).sum();
        prop_assert!(total <= 1.0 + 1e-9, "mass {total}");
        for (k, v) in &out.final_state {
            prop_assert!(*v > 0.0 && *v <= 1.0, "rank of {k} is {v}");
        }
    }

    /// Virtual timelines are monotone: each iteration completes
    /// strictly after the previous one, and the job finishes after the
    /// last iteration.
    #[test]
    fn timelines_are_monotone(seed in any::<u64>(), n in 20usize..60, iters in 2usize..6) {
        let g = generate_graph(n, n as u64 * 2, pagerank_degree_dist(), seed);
        let r = imr_runner(2);
        let cfg = IterConfig::new("pr", 2, iters);
        let out = pagerank::run_pagerank_imr(&r, &g, &cfg).unwrap();
        let times = &out.report.iteration_done;
        prop_assert_eq!(times.len(), iters);
        for w in times.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        prop_assert!(out.report.finished >= *times.last().unwrap());
    }

    /// The native multi-threaded backend, running asynchronously on
    /// several worker threads, reproduces the sequential SSSP reference
    /// bit for bit on arbitrary graphs (min-relaxation is
    /// order-independent, so thread interleaving must not show).
    #[test]
    fn native_async_matches_sequential_reference(seed in any::<u64>(), n in 20usize..80) {
        let g = generate_weighted_graph(n, n as u64 * 3, sssp_degree_dist(), sssp_weight_dist(), seed);
        let iters = 8;
        let r = native_runner(3);
        let cfg = IterConfig::new("sssp", 3, iters);
        let out = sssp::run_sssp_imr(&r, &g, 0, &cfg).unwrap();
        let expect = sssp::reference_sssp_rounds(&g, 0, iters);
        prop_assert_eq!(out.final_state.len(), n);
        for (k, d) in &out.final_state {
            let e = expect[*k as usize];
            prop_assert!(
                *d == e || (d.is_infinite() && e.is_infinite()),
                "node {}: native={} ref={}", k, d, e
            );
        }
    }

    /// Native checkpoint/rollback recovery under random failure
    /// schedules: whatever the (node, iteration) script — including
    /// back-to-back failures and a failure on the checkpoint iteration
    /// itself, both forced below — the recovered run is bit-identical
    /// to a failure-free run and matches the sequential reference.
    #[test]
    fn native_recovery_is_invisible_under_random_schedules(
        seed in any::<u64>(),
        n in 20usize..60,
        interval in 1usize..4,
        schedule in proptest::collection::vec((0u32..4, 1usize..7), 0..4),
    ) {
        let g = generate_weighted_graph(n, n as u64 * 3, sssp_degree_dist(), sssp_weight_dist(), seed);
        let iters = 8;
        let mut failures: Vec<FailureEvent> = schedule
            .iter()
            .map(|&(node, at)| FailureEvent { node: NodeId(node), at_iteration: at })
            .collect();
        // Always cover the two nastiest cases: a failure on the very
        // iteration that checkpoints, and the same failure again back
        // to back. (Events the replay never reaches again — e.g. a
        // duplicate behind an already-committed checkpoint — stay
        // pending and are simply never consumed.)
        failures.push(FailureEvent { node: NodeId(0), at_iteration: interval });
        failures.push(FailureEvent { node: NodeId(0), at_iteration: interval });

        let cfg = IterConfig::new("sssp", 4, iters).with_checkpoint_interval(interval);
        let failed = {
            let r = native_runner(4);
            sssp::load_sssp_imr(&r, &g, 0, 4, "/s", "/t").unwrap();
            r.run(&SsspIter, &cfg, "/s", "/t", "/o", &failures).unwrap()
        };
        let clean = {
            let r = native_runner(4);
            sssp::load_sssp_imr(&r, &g, 0, 4, "/s", "/t").unwrap();
            r.run(&SsspIter, &cfg, "/s", "/t", "/o", &[]).unwrap()
        };
        prop_assert!(failed.recoveries >= 1, "forced failure never fired");
        prop_assert_eq!(&failed.final_state, &clean.final_state);
        prop_assert_eq!(failed.iterations, clean.iterations);
        prop_assert_eq!(&failed.distances, &clean.distances);
        let expect = sssp::reference_sssp_rounds(&g, 0, iters);
        for (k, d) in &failed.final_state {
            let e = expect[*k as usize];
            prop_assert!(
                *d == e || (d.is_infinite() && e.is_infinite()),
                "node {}: recovered={} ref={}", k, d, e
            );
        }
    }

    /// Mixed kill/hang schedules on the native backend: killed pairs
    /// are detected instantly, hung pairs only through the watchdog's
    /// stall timeout — and recovery from either (including both in the
    /// same generation) leaves the run bit-identical to a clean one.
    #[test]
    fn native_mixed_kill_hang_schedules_are_invisible(
        seed in any::<u64>(),
        n in 20usize..60,
        schedule in proptest::collection::vec((0u32..4, 1usize..7, any::<bool>()), 0..3),
    ) {
        let g = generate_weighted_graph(n, n as u64 * 3, sssp_degree_dist(), sssp_weight_dist(), seed);
        let iters = 8;
        let mut faults: Vec<FaultEvent> = schedule
            .iter()
            .map(|&(node, at, hang)| if hang {
                FaultEvent::Hang { node: NodeId(node), at_iteration: at }
            } else {
                FaultEvent::Kill { node: NodeId(node), at_iteration: at }
            })
            .collect();
        // Always include one guaranteed hang so every case exercises
        // the watchdog path at least once.
        faults.push(FaultEvent::Hang { node: NodeId(1), at_iteration: 3 });

        let cfg = IterConfig::new("sssp", 4, iters)
            .with_checkpoint_interval(2)
            .with_watchdog(WatchdogConfig {
                poll: Duration::from_millis(5),
                stall_timeout: Duration::from_millis(150),
            });
        let failed = {
            let r = native_runner(4);
            sssp::load_sssp_imr(&r, &g, 0, 4, "/s", "/t").unwrap();
            r.run_faults(&SsspIter, &cfg, "/s", "/t", "/o", &faults).unwrap()
        };
        let clean = {
            let r = native_runner(4);
            sssp::load_sssp_imr(&r, &g, 0, 4, "/s", "/t").unwrap();
            r.run(&SsspIter, &cfg, "/s", "/t", "/o", &[]).unwrap()
        };
        prop_assert!(failed.recoveries >= 1, "forced hang never fired");
        prop_assert_eq!(&failed.final_state, &clean.final_state);
        prop_assert_eq!(failed.iterations, clean.iterations);
        prop_assert_eq!(&failed.distances, &clean.distances);
    }

    /// Sync-mode native runs are deterministic: two runs over the same
    /// inputs produce identical states, distances and iteration counts.
    #[test]
    fn native_sync_is_deterministic(seed in any::<u64>(), n in 20usize..60) {
        let g = generate_graph(n, n as u64 * 3, pagerank_degree_dist(), seed);
        let cfg = IterConfig::new("pr", 4, 5).with_sync_maps().with_distance_threshold(1e-9);
        let a = pagerank::run_pagerank_imr(&native_runner(2), &g, &cfg).unwrap();
        let b = pagerank::run_pagerank_imr(&native_runner(2), &g, &cfg).unwrap();
        prop_assert_eq!(a.final_state, b.final_state);
        prop_assert_eq!(a.distances, b.distances);
        prop_assert_eq!(a.iterations, b.iterations);
    }

    /// Delta-accumulative SSSP under arbitrary delta arrival orders:
    /// random batch sizes, check cadences and task counts reshuffle
    /// which deltas travel when, but ⊕ = min is associative and
    /// commutative, so every schedule reaches the same Dijkstra
    /// fixpoint — and sim and native agree bit-for-bit per schedule.
    #[test]
    fn delta_schedules_converge_to_the_same_fixpoint(
        seed in any::<u64>(),
        n in 20usize..60,
        batch in 0usize..48,
        every in 1usize..4,
        tasks in 1usize..5,
    ) {
        let g = generate_weighted_graph(n, n as u64 * 3, sssp_degree_dist(), sssp_weight_dist(), seed);
        let cfg = IterConfig::new("ssspd", tasks, 200)
            .with_accumulative_mode()
            .with_distance_threshold(1e-9)
            .with_delta_batch(batch)
            .with_check_every(every);
        let sim = sssp::run_sssp_delta(&imr_runner(2), &g, 0, &cfg).unwrap();
        let nat = sssp::run_sssp_delta(&native_runner(2), &g, 0, &cfg).unwrap();
        prop_assert_eq!(&sim.final_state, &nat.final_state);
        prop_assert_eq!(sim.iterations, nat.iterations);
        prop_assert_eq!(&sim.distances, &nat.distances);
        let expect = sssp::reference_sssp(&g, 0);
        for (k, d) in &sim.final_state {
            let e = expect[*k as usize];
            prop_assert!(
                (d - e).abs() < 1e-9 || (d.is_infinite() && e.is_infinite()),
                "node {}: delta={} dijkstra={} batch={} every={} tasks={}",
                k, d, e, batch, every, tasks
            );
        }
    }

    /// Random kill/hang schedules mid-delta-propagation on the native
    /// backend: checkpoint rollback restores the per-key (value, delta)
    /// store, so the recovered run is bit-identical to a clean one —
    /// same values, same check count, same progress trace.
    #[test]
    fn delta_fault_schedules_are_invisible(
        seed in any::<u64>(),
        n in 20usize..60,
        schedule in proptest::collection::vec((0u32..4, 1usize..6, any::<bool>()), 0..3),
    ) {
        let g = generate_graph(n, n as u64 * 3, pagerank_degree_dist(), seed);
        let mut faults: Vec<FaultEvent> = schedule
            .iter()
            .map(|&(node, at, hang)| if hang {
                FaultEvent::Hang { node: NodeId(node), at_iteration: at }
            } else {
                FaultEvent::Kill { node: NodeId(node), at_iteration: at }
            })
            .collect();
        // One guaranteed hang so every case recovers at least once
        // (PageRank at this threshold always runs well past check 3).
        faults.push(FaultEvent::Hang { node: NodeId(1), at_iteration: 3 });

        let cfg = IterConfig::new("prd", 4, 400)
            .with_accumulative_mode()
            .with_distance_threshold(1e-6)
            .with_checkpoint_interval(2)
            .with_watchdog(WatchdogConfig {
                poll: Duration::from_millis(5),
                stall_timeout: Duration::from_millis(150),
            });
        let failed = {
            let r = native_runner(4);
            pagerank::load_pagerank_imr(&r, &g, 4, "/s", "/t").unwrap();
            let job = pagerank::PageRankIter::new(g.num_nodes() as u64);
            r.run_accumulative(&job, &cfg, "/s", "/t", "/o", &faults).unwrap()
        };
        let clean = {
            let r = native_runner(4);
            pagerank::load_pagerank_imr(&r, &g, 4, "/s", "/t").unwrap();
            let job = pagerank::PageRankIter::new(g.num_nodes() as u64);
            r.run_accumulative(&job, &cfg, "/s", "/t", "/o", &[]).unwrap()
        };
        prop_assert!(failed.recoveries >= 1, "forced hang never fired");
        prop_assert_eq!(&failed.final_state, &clean.final_state);
        prop_assert_eq!(failed.iterations, clean.iterations);
        prop_assert_eq!(&failed.distances, &clean.distances);
    }

    /// Incremental runs compose: an arbitrary sequence of small graph
    /// deltas (edge inserts/removals/reweights, node inserts) applied
    /// one warm re-convergence at a time — each chained off the
    /// previous run's preserved fixpoint — lands on exactly the
    /// fixpoint one cold run computes on the final mutated graph, and
    /// the sim and native engines agree bit for bit along the way.
    #[test]
    fn incremental_delta_sequences_match_one_cold_run(
        seed in any::<u64>(),
        n in 20usize..50,
        ops in proptest::collection::vec((0u8..4, any::<u32>(), any::<u32>(), 1u32..60), 1..5),
    ) {
        use imapreduce::GraphDelta;
        use imr_algorithms::incremental::{converge_cold, patched_statics, weighted_statics};
        use imr_algorithms::sssp::SsspInc;

        let g = generate_weighted_graph(n, n as u64 * 3, sssp_degree_dist(), sssp_weight_dist(), seed);
        let job = SsspInc { source: 0 };
        let base = weighted_statics(&g);

        // Derive a valid delta sequence from the raw op tuples,
        // tracking the mutated graph through the same `apply_delta`
        // the planner uses (weights are halves, exact in f32/f64).
        let mut statics = base.clone();
        let mut next_node = n as u32;
        let mut deltas: Vec<GraphDelta> = Vec::new();
        for &(kind, x, y, w) in &ops {
            let keys: Vec<u32> = statics.keys().copied().collect();
            let u = keys[x as usize % keys.len()];
            let v = keys[y as usize % keys.len()];
            let wt = w as f32 * 0.5;
            let mut delta = GraphDelta::new();
            match kind {
                0 => {
                    delta.insert_edge(u, v, wt);
                }
                1 => match statics[&u].first().copied() {
                    Some((t, _)) => {
                        delta.remove_edge(u, t);
                    }
                    None => {
                        delta.insert_edge(u, v, wt);
                    }
                },
                2 => match statics[&u].last().copied() {
                    Some((t, _)) => {
                        delta.reweight_edge(u, t, wt);
                    }
                    None => {
                        delta.insert_edge(u, v, wt);
                    }
                },
                _ => {
                    delta.insert_node(next_node).insert_edge(u, next_node, wt);
                    next_node += 1;
                }
            }
            statics = patched_statics(&job, &statics, &delta).unwrap();
            deltas.push(delta);
        }

        let cfg = IterConfig::new("ssspi", 3, 200)
            .with_accumulative_mode()
            .with_distance_threshold(1e-9);
        let sim = chain_incremental(&imr_runner(3), &job, &base, &deltas, &cfg);
        let nat = chain_incremental(&native_runner(3), &job, &base, &deltas, &cfg);
        let cold = converge_cold(&imr_runner(3), &job, &statics, &cfg, "/final").unwrap();
        prop_assert_eq!(&sim.final_state, &cold.final_state);
        prop_assert_eq!(&nat.final_state, &cold.final_state);
        prop_assert_eq!(&sim.final_state, &nat.final_state);
    }
}

/// Chain `deltas` through warm incremental re-convergences on `runner`,
/// each step preserving its converged output as the fixpoint the next
/// step starts from. Returns the last step's outcome.
fn chain_incremental(
    runner: &impl imapreduce::IterEngine,
    job: &imr_algorithms::sssp::SsspInc,
    base: &std::collections::BTreeMap<u32, imr_algorithms::sssp::Adj>,
    deltas: &[imapreduce::GraphDelta],
    cfg: &IterConfig,
) -> imapreduce::IterOutcome<u32, f64> {
    use imapreduce::FixpointStore;
    use imr_algorithms::incremental::{converge_and_preserve, inc_dirs};
    use imr_simcluster::TaskClock;

    let (cold, mut fix) = converge_and_preserve(runner, job, base, cfg, "/chain").unwrap();
    let mut prev_static = inc_dirs("/chain").static_;
    let inc_cfg = cfg.clone().with_incremental_mode();
    let mut clock = TaskClock::default();
    let mut last = cold;
    for (i, delta) in deltas.iter().enumerate() {
        let d = inc_dirs(&format!("/chain/{i}"));
        let out = runner
            .run_incremental(
                job,
                &inc_cfg,
                &fix,
                &prev_static,
                delta,
                &d.inc_state,
                &d.inc_static,
                &d.inc_out,
                &[],
            )
            .unwrap();
        let next = FixpointStore::new(d.fix);
        next.preserve(runner.dfs(), out.outcome.iterations, &d.inc_out, &mut clock)
            .unwrap();
        fix = next;
        prev_static = d.inc_static;
        last = out.outcome;
    }
    last
}

/// Every engine rejects the unsupported accumulative combinations with
/// a configuration error instead of running: the map/reduce entry
/// points refuse an accumulative config, `run_accumulative` refuses a
/// non-accumulative one, the in-process entry refuses the TCP
/// transport, and the sim refuses fault scripts in delta mode.
#[test]
fn delta_validation_rejects_unsupported_combos_on_every_engine() {
    use imapreduce::{EngineError, IterEngine};
    use imr_algorithms::sssp::SsspIter;

    let g = generate_weighted_graph(24, 72, sssp_degree_dist(), sssp_weight_dist(), 7);
    let acc = IterConfig::new("ssspd", 2, 10)
        .with_accumulative_mode()
        .with_distance_threshold(1e-9);
    let plain = IterConfig::new("sssp", 2, 10);
    fn expect_config<T>(r: Result<T, EngineError>, needle: &str) {
        match r {
            Err(EngineError::Config(msg)) => assert!(msg.contains(needle), "{msg}"),
            Err(other) => panic!("expected a Config error, got {other}"),
            Ok(_) => panic!("expected a Config error, got success"),
        }
    }

    let sim = imr_runner(2);
    sssp::load_sssp_imr(&sim, &g, 0, 2, "/s", "/t").unwrap();
    expect_config(
        sim.run(&SsspIter, &acc, "/s", "/t", "/o", &[]),
        "use run_accumulative",
    );
    expect_config(
        IterEngine::run_accumulative(&sim, &SsspIter, &plain, "/s", "/t", "/o", &[]),
        "with_accumulative_mode",
    );
    let kill = [FaultEvent::Kill {
        node: NodeId(0),
        at_iteration: 1,
    }];
    expect_config(
        IterEngine::run_accumulative(&sim, &SsspIter, &acc, "/s", "/t", "/o", &kill),
        "native backend",
    );

    let nat = native_runner(2);
    sssp::load_sssp_imr(&nat, &g, 0, 2, "/s", "/t").unwrap();
    expect_config(
        nat.run(&SsspIter, &acc, "/s", "/t", "/o", &[]),
        "use run_accumulative",
    );
    expect_config(
        nat.run_faults(&SsspIter, &acc, "/s", "/t", "/o", &[]),
        "use run_accumulative",
    );
    expect_config(
        nat.run_accumulative(&SsspIter, &plain, "/s", "/t", "/o", &[]),
        "with_accumulative_mode",
    );
    expect_config(
        nat.run_accumulative(
            &SsspIter,
            &acc.clone().with_tcp_transport(),
            "/s",
            "/t",
            "/o",
            &[],
        ),
        "run_remote",
    );

    // Config-level combos are rejected before any engine is involved.
    for bad in [
        acc.clone().with_one2all(),
        acc.clone().with_sync_maps(),
        acc.clone().with_check_every(0),
        IterConfig::new("ssspd", 2, 10).with_accumulative_mode(),
    ] {
        expect_config(bad.validate(&[]), "accumulative");
    }
}
