//! The structured-tracing subsystem end to end: the canonical event
//! sequence is identical across all engines (sim, native channel,
//! native TCP), scripted kills leave exactly one `Rollback` plus a
//! flight-recorder artifact in the DFS, and the trace-derived
//! async-overlap score validates the §3.3 pipeline claim.

use imapreduce::{FailureEvent, IterConfig, IterEngine};
use imr_algorithms::pagerank;
use imr_algorithms::sssp::{self, SsspIter};
use imr_algorithms::testutil::{imr_runner, imr_runner_on, native_runner};
use imr_graph::dataset;
use imr_native::WorkerSpec;
use imr_simcluster::{ClusterSpec, NodeId, TaskClock};
use imr_trace::{canonical_kinds, TraceBuffer, TraceHandle, TraceKind, TraceReport};
use std::sync::Arc;

fn handle() -> TraceHandle {
    Arc::new(TraceBuffer::with_capacity(1 << 14))
}

fn worker_spec(job_args: &[&str]) -> WorkerSpec {
    WorkerSpec::new(
        env!("CARGO_BIN_EXE_imr-worker"),
        job_args.iter().map(|s| (*s).to_owned()).collect(),
    )
}

/// The determinism satellite: SSSP, 4 tasks, synchronous maps, a
/// checkpoint every 2 of 6 iterations — the *ordered event-type
/// sequence* (timestamps excluded) must be identical for the
/// virtual-time engine, the native thread backend, and worker OS
/// processes over TCP with the coordinator-merged trace.
#[test]
fn canonical_trace_is_identical_across_all_three_engines() {
    let g = dataset("DBLP").unwrap().generate(0.005);
    let cfg = IterConfig::new("sssp", 4, 6)
        .with_sync_maps()
        .with_checkpoint_interval(2);

    let sim_trace = handle();
    let sim = imr_runner(4).with_trace(Arc::clone(&sim_trace));
    let a = sssp::run_sssp_imr(&sim, &g, 0, &cfg).unwrap();

    let chan_trace = handle();
    let chan = native_runner(4).with_trace(Arc::clone(&chan_trace));
    let b = sssp::run_sssp_imr(&chan, &g, 0, &cfg).unwrap();

    let tcp_trace = handle();
    let tcp = native_runner(4).with_trace(Arc::clone(&tcp_trace));
    sssp::load_sssp_imr(&tcp, &g, 0, 4, "/s", "/t").unwrap();
    let c = tcp
        .run_remote(
            &SsspIter,
            &worker_spec(&["sssp"]),
            &cfg.clone().with_tcp_transport(),
            "/s",
            "/t",
            "/o",
            &[],
        )
        .unwrap();

    // Results agree (the engines' existing contract) …
    assert_eq!(a.final_state, b.final_state);
    assert_eq!(a.final_state, c.final_state);

    // … and so do the traces, canonically ordered.
    let sim_kinds = canonical_kinds(&sim_trace.snapshot());
    let chan_kinds = canonical_kinds(&chan_trace.snapshot());
    let tcp_kinds = canonical_kinds(&tcp_trace.snapshot());
    assert!(!sim_kinds.is_empty(), "sim trace must not be empty");
    assert_eq!(sim_kinds, chan_kinds, "sim vs native-channel trace");
    assert_eq!(sim_kinds, tcp_kinds, "sim vs native-TCP merged trace");

    // Spot-check the expected event mix: per pair per iteration a full
    // span set, plus one Checkpoint per pair at iterations 2 and 4.
    let count = |k: &str| sim_kinds.iter().filter(|n| **n == k).count();
    assert_eq!(count("IterStart"), 4 * 6);
    assert_eq!(count("MapPhase"), 4 * 6);
    assert_eq!(count("ReducePhase"), 4 * 6);
    assert_eq!(count("StateHandoff"), 4 * 6);
    assert_eq!(count("IterEnd"), 4 * 6);
    assert_eq!(count("Checkpoint"), 4 * 2);
    assert_eq!(count("Rollback"), 0);
    assert_eq!(count("Reconnect"), 0);
}

/// The kill satellite, on both in-process engines: one scripted kill
/// produces exactly one `Rollback` in the trace and dumps a
/// flight-recorder artifact into the DFS that contains that event.
#[test]
fn scripted_kill_records_one_rollback_and_flight_artifact() {
    let g = dataset("DBLP").unwrap().generate(0.005);
    let cfg = IterConfig::new("sssp", 4, 6).with_checkpoint_interval(2);
    let failures = [FailureEvent {
        node: NodeId(0),
        at_iteration: 3,
    }];

    let engines: [(&str, Box<dyn Fn() -> _>); 2] = [
        (
            "sim",
            Box::new(|| {
                let t = handle();
                let r = imr_runner(4).with_trace(Arc::clone(&t));
                let out = sssp_run_faulted(&r, &g, &cfg, &failures);
                (t, out)
            }),
        ),
        (
            "native",
            Box::new(|| {
                let t = handle();
                let r = native_runner(4).with_trace(Arc::clone(&t));
                let out = sssp_run_faulted(&r, &g, &cfg, &failures);
                (t, out)
            }),
        ),
    ];
    for (label, run) in engines {
        let (trace, (recoveries, flight)) = run();
        assert_eq!(recoveries, 1, "{label}: one kill, one recovery");
        let events = trace.snapshot();
        let rollbacks = events
            .iter()
            .filter(|e| matches!(e.kind, TraceKind::Rollback { .. }))
            .count();
        assert_eq!(rollbacks, 1, "{label}: exactly one Rollback in trace");
        assert!(
            flight.contains("Rollback"),
            "{label}: flight artifact must contain the Rollback event, got:\n{flight}"
        );
        // The analyzer sees the same incident.
        let report = TraceReport::from_events(&events);
        assert_eq!(report.rollbacks, 1, "{label}");
        assert_eq!(report.migrations, 0, "{label}");
    }
}

/// Runs faulted SSSP on `runner` and returns the recovery count plus
/// the flight-recorder artifact the rollback dumped into the DFS.
fn sssp_run_faulted(
    runner: &impl IterEngine,
    g: &imr_graph::Graph,
    cfg: &IterConfig,
    failures: &[FailureEvent],
) -> (u64, String) {
    sssp::load_sssp_imr(runner, g, 0, cfg.num_tasks, "/s", "/t").unwrap();
    let out = runner
        .run(&SsspIter, cfg, "/s", "/t", "/o", failures)
        .unwrap();
    let path = imr_trace::flight_path("/o", 0);
    let mut clock = TaskClock::default();
    let bytes = runner
        .dfs()
        .read(&path, NodeId(0), &mut clock)
        .unwrap_or_else(|e| panic!("flight artifact {path} missing: {e:?}"));
    (out.recoveries, String::from_utf8_lossy(&bytes).into_owned())
}

/// §3.3 via traces: on a speed-skewed cluster, asynchronous map
/// activation overlaps predecessor reduces (score > 0) while the
/// synchronous mode never does (score exactly 0).
#[test]
fn async_overlap_score_separates_sync_from_async() {
    let g = dataset("PageRank-s").unwrap().generate(0.01);
    let mut spec = ClusterSpec::local(4).with_sample_scale(0.01);
    spec.nodes[0].speed = 0.5;

    let mut scores = Vec::new();
    for sync in [true, false] {
        let trace = handle();
        let r = imr_runner_on(spec.clone()).with_trace(Arc::clone(&trace));
        let mut cfg = IterConfig::new("pr", 4, 6);
        if sync {
            cfg = cfg.with_sync_maps();
        }
        pagerank::run_pagerank_imr(&r, &g, &cfg).unwrap();
        let report = TraceReport::from_events(&trace.snapshot());
        assert_eq!(report.iterations, 6);
        assert!(report.map.count >= 4 * 6);
        scores.push(report.async_overlap);
    }
    assert_eq!(scores[0], 0.0, "sync maps must show zero overlap");
    assert!(
        scores[1] > 0.0,
        "async maps must overlap predecessor reduces, got {}",
        scores[1]
    );
}

/// The TCP path merges worker-streamed batches into one causally
/// ordered trace: worker span events arrive tagged with the hosting
/// node and land alongside coordinator-side events in one buffer.
#[test]
fn tcp_trace_merges_worker_events_with_node_tags() {
    let g = dataset("DBLP").unwrap().generate(0.004);
    let cfg = IterConfig::new("sssp", 2, 4).with_tcp_transport();
    let trace = handle();
    let tcp = native_runner(4).with_trace(Arc::clone(&trace));
    sssp::load_sssp_imr(&tcp, &g, 0, 2, "/s", "/t").unwrap();
    tcp.run_remote(
        &SsspIter,
        &worker_spec(&["sssp"]),
        &cfg,
        "/s",
        "/t",
        "/o",
        &[],
    )
    .unwrap();
    let events = trace.snapshot();
    let maps: Vec<_> = events
        .iter()
        .filter(|e| matches!(e.kind, TraceKind::MapPhase))
        .collect();
    assert_eq!(maps.len(), 2 * 4, "one map span per pair per iteration");
    // Worker events are retagged coordinator-side from the assignment,
    // so both pairs' nodes appear.
    let nodes: std::collections::BTreeSet<u32> = maps.iter().map(|e| e.node).collect();
    assert_eq!(nodes.len(), 2, "two pairs on two distinct nodes");
    // Timestamps were rebased into the coordinator's clock: monotone
    // per (task, kind) within the run.
    for e in &events {
        assert!(e.end_nanos >= e.start_nanos);
    }
}
